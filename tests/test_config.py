"""Typed-accessor contract of :mod:`repro.config`.

Every ``REPRO_*`` knob is read through one of the generic readers
(``env_flag`` / ``env_int`` / ``env_float`` / ``env_str`` / ``env_choice``),
whose shared contract is: unset means the documented default, a valid value
is parsed, and a malformed value *warns* (naming the variable) and falls
back instead of crashing every caller downstream.  This suite pins that
contract for each reader and for every named accessor.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import pytest

from repro import config


@pytest.fixture(autouse=True)
def _clean_knobs(monkeypatch):
    """Tests control the environment explicitly; start from unset."""
    for name in list(os.environ):
        if name.startswith("REPRO_"):
            monkeypatch.delenv(name, raising=False)
    yield


def _no_warnings():
    return warnings.catch_warnings()


# ---------------------------------------------------------------------------
# Generic readers
# ---------------------------------------------------------------------------

class TestEnvFlag:
    def test_unset_returns_default(self, monkeypatch):
        assert config.env_flag("REPRO_TEST_FLAG") is False
        assert config.env_flag("REPRO_TEST_FLAG", default=True) is True

    @pytest.mark.parametrize("value", ["1", "true", "True", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert config.env_flag("REPRO_TEST_FLAG") is True

    @pytest.mark.parametrize("value", ["0", "false", "off", "junk", ""])
    def test_conservative_falsy(self, monkeypatch, value):
        """Anything outside the allow-list is False — a typo can never
        silently switch a feature on."""
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert config.env_flag("REPRO_TEST_FLAG", default=False) is False


class TestEnvInt:
    def test_unset_and_blank_return_default(self, monkeypatch):
        assert config.env_int("REPRO_TEST_INT", 7) == 7
        monkeypatch.setenv("REPRO_TEST_INT", "   ")
        assert config.env_int("REPRO_TEST_INT", 7) == 7

    def test_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", " 42 ")
        assert config.env_int("REPRO_TEST_INT", 7) == 42
        monkeypatch.setenv("REPRO_TEST_INT", "-3")
        assert config.env_int("REPRO_TEST_INT", 7) == -3

    def test_malformed_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "three")
        with pytest.warns(UserWarning, match="REPRO_TEST_INT"):
            assert config.env_int("REPRO_TEST_INT", 7) == 7


class TestEnvFloat:
    def test_unset_returns_default(self):
        assert config.env_float("REPRO_TEST_FLOAT", 1.5) == 1.5

    def test_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLOAT", "2.25")
        assert config.env_float("REPRO_TEST_FLOAT", 1.5) == 2.25

    def test_malformed_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLOAT", "fast")
        with pytest.warns(UserWarning, match="REPRO_TEST_FLOAT"):
            assert config.env_float("REPRO_TEST_FLOAT", 1.5) == 1.5


class TestEnvStr:
    def test_unset_and_whitespace_return_default(self, monkeypatch):
        assert config.env_str("REPRO_TEST_STR", "d") == "d"
        monkeypatch.setenv("REPRO_TEST_STR", "  ")
        assert config.env_str("REPRO_TEST_STR", "d") == "d"

    def test_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_STR", "  value ")
        assert config.env_str("REPRO_TEST_STR", "d") == "value"


class TestEnvChoice:
    def test_valid_choice(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CHOICE", "b")
        assert config.env_choice("REPRO_TEST_CHOICE", "a", ("a", "b")) == "b"

    def test_unset_returns_default_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert config.env_choice("REPRO_TEST_CHOICE", "a",
                                     ("a", "b")) == "a"

    def test_invalid_warns_with_variable_and_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CHOICE", "zzz")
        with pytest.warns(UserWarning) as record:
            assert config.env_choice("REPRO_TEST_CHOICE", "a",
                                     ("a", "b")) == "a"
        message = str(record[0].message)
        assert "REPRO_TEST_CHOICE" in message
        assert "'zzz'" in message
        assert "('a', 'b')" in message
        assert "falling back to 'a'" in message


# ---------------------------------------------------------------------------
# NN compute core knobs
# ---------------------------------------------------------------------------

class TestNNBackend:
    @pytest.mark.parametrize("value", ["fast", "native", "reference"])
    def test_valid_backends(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NN_BACKEND", value)
        assert config.nn_backend() == value

    def test_unset_defaults_to_fast(self):
        assert config.nn_backend() == "fast"

    def test_invalid_backend_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_BACKEND", "cuda")
        with pytest.warns(UserWarning) as record:
            assert config.nn_backend() == "fast"
        message = str(record[0].message)
        assert "REPRO_NN_BACKEND" in message
        assert "'cuda'" in message
        assert str(config.NN_BACKENDS) in message


class TestNNThreads:
    def test_default_is_cpu_count(self):
        assert config.nn_threads() == max(1, os.cpu_count() or 1)

    def test_explicit_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_THREADS", "3")
        assert config.nn_threads() == 3

    def test_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_THREADS", "0")
        assert config.nn_threads() == 1
        monkeypatch.setenv("REPRO_NN_THREADS", "-4")
        assert config.nn_threads() == 1

    def test_malformed_warns_and_uses_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_THREADS", "many")
        with pytest.warns(UserWarning, match="REPRO_NN_THREADS"):
            assert config.nn_threads() == max(1, os.cpu_count() or 1)


class TestNNMiscKnobs:
    def test_workspace_mb(self, monkeypatch):
        assert config.nn_workspace_mb() == 256.0
        monkeypatch.setenv("REPRO_NN_WORKSPACE_MB", "64")
        assert config.nn_workspace_mb() == 64.0

    def test_quant_cache(self, monkeypatch):
        assert config.nn_quant_cache_enabled() is True
        monkeypatch.setenv("REPRO_NN_QUANT_CACHE", "0")
        assert config.nn_quant_cache_enabled() is False

    def test_batched_restarts(self, monkeypatch):
        assert config.nn_batched_restarts() is True
        monkeypatch.setenv("REPRO_NN_BATCHED_RESTARTS", "0")
        assert config.nn_batched_restarts() is False

    def test_native_cache_dir(self, monkeypatch):
        assert config.nn_native_cache_dir() == \
            Path.home() / ".cache" / "repro" / "native"
        monkeypatch.setenv("REPRO_NN_NATIVE_CACHE_DIR", "/tmp/kernels")
        assert config.nn_native_cache_dir() == Path("/tmp/kernels")


# ---------------------------------------------------------------------------
# Native toolchain knobs
# ---------------------------------------------------------------------------

class TestNativeToolchainKnobs:
    def test_cc_override_unset_and_blank_mean_none(self, monkeypatch):
        monkeypatch.delenv("CC", raising=False)
        assert config.cc_override() is None
        monkeypatch.setenv("CC", "   ")
        assert config.cc_override() is None

    def test_cc_override_value_is_stripped_and_trusted(self, monkeypatch):
        monkeypatch.setenv("CC", "  /no/such/compiler -flag  ")
        assert config.cc_override() == "/no/such/compiler -flag"

    def test_sanitize_unset_is_a_production_build(self, monkeypatch):
        monkeypatch.delenv("REPRO_NN_NATIVE_SANITIZE", raising=False)
        assert config.nn_native_sanitize() == ()

    def test_sanitize_single_and_combined(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_NATIVE_SANITIZE", "address")
        assert config.nn_native_sanitize() == ("address",)
        monkeypatch.setenv("REPRO_NN_NATIVE_SANITIZE", "address,undefined")
        assert config.nn_native_sanitize() == ("address", "undefined")

    def test_sanitize_order_and_case_are_canonicalised(self, monkeypatch):
        # Equivalent spellings must share one compile-cache slot.
        monkeypatch.setenv("REPRO_NN_NATIVE_SANITIZE", " Undefined , ADDRESS ")
        assert config.nn_native_sanitize() == ("address", "undefined")

    def test_sanitize_unknown_warns_and_is_dropped(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_NATIVE_SANITIZE", "address,thread")
        with pytest.warns(UserWarning) as record:
            assert config.nn_native_sanitize() == ("address",)
        message = str(record[0].message)
        assert "REPRO_NN_NATIVE_SANITIZE" in message and "thread" in message

    def test_ld_preload_reflects_environment(self, monkeypatch):
        monkeypatch.delenv("LD_PRELOAD", raising=False)
        assert config.ld_preload() == ""
        monkeypatch.setenv("LD_PRELOAD", "/usr/lib/libasan.so")
        assert config.ld_preload() == "/usr/lib/libasan.so"


# ---------------------------------------------------------------------------
# Inference / serving knobs
# ---------------------------------------------------------------------------

class TestServingKnobs:
    def test_fold_bn(self, monkeypatch):
        assert config.infer_fold_bn() is True
        monkeypatch.setenv("REPRO_INFER_FOLD_BN", "0")
        assert config.infer_fold_bn() is False

    def test_max_batch_clamped_to_one(self, monkeypatch):
        assert config.serving_max_batch() == 64
        monkeypatch.setenv("REPRO_SERVING_MAX_BATCH", "0")
        assert config.serving_max_batch() == 1

    def test_max_batch_malformed_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_MAX_BATCH", "lots")
        with pytest.warns(UserWarning, match="REPRO_SERVING_MAX_BATCH"):
            assert config.serving_max_batch() == 64

    def test_max_delay_clamped_to_zero(self, monkeypatch):
        assert config.serving_max_delay_ms() == 2.0
        monkeypatch.setenv("REPRO_SERVING_MAX_DELAY_MS", "-5")
        assert config.serving_max_delay_ms() == 0.0

    def test_workers_default_and_clamp(self, monkeypatch):
        assert config.serving_workers() == 1
        monkeypatch.setenv("REPRO_SERVING_WORKERS", "4")
        assert config.serving_workers() == 4
        monkeypatch.setenv("REPRO_SERVING_WORKERS", "0")
        assert config.serving_workers() == 1
        monkeypatch.setenv("REPRO_SERVING_WORKERS", "-2")
        assert config.serving_workers() == 1

    def test_workers_malformed_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_WORKERS", "fleet")
        with pytest.warns(UserWarning, match="REPRO_SERVING_WORKERS"):
            assert config.serving_workers() == 1

    def test_ring_mb_default_and_floor(self, monkeypatch):
        assert config.serving_ring_mb() == 8.0
        monkeypatch.setenv("REPRO_SERVING_RING_MB", "0.5")
        assert config.serving_ring_mb() == 0.5
        monkeypatch.setenv("REPRO_SERVING_RING_MB", "0")
        assert config.serving_ring_mb() == 0.001

    def test_transport_choices(self, monkeypatch):
        assert config.serving_transport() == "shm"
        monkeypatch.setenv("REPRO_SERVING_TRANSPORT", "inline")
        assert config.serving_transport() == "inline"

    def test_transport_invalid_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_TRANSPORT", "rdma")
        with pytest.warns(UserWarning) as record:
            assert config.serving_transport() == "shm"
        message = str(record[0].message)
        assert "REPRO_SERVING_TRANSPORT" in message
        assert str(config.SERVING_TRANSPORTS) in message


# ---------------------------------------------------------------------------
# Request-lifecycle knobs
# ---------------------------------------------------------------------------

class TestLifecycleKnobs:
    def test_queue_limit_default_and_clamp(self, monkeypatch):
        assert config.serving_queue_limit() == 0
        monkeypatch.setenv("REPRO_SERVING_QUEUE_LIMIT", "128")
        assert config.serving_queue_limit() == 128
        monkeypatch.setenv("REPRO_SERVING_QUEUE_LIMIT", "-4")
        assert config.serving_queue_limit() == 0

    def test_deadline_default_and_clamp(self, monkeypatch):
        assert config.serving_deadline_ms() == 0.0
        monkeypatch.setenv("REPRO_SERVING_DEADLINE_MS", "250")
        assert config.serving_deadline_ms() == 250.0
        monkeypatch.setenv("REPRO_SERVING_DEADLINE_MS", "-1")
        assert config.serving_deadline_ms() == 0.0

    def test_heartbeat_floor_prevents_spinning(self, monkeypatch):
        assert config.serving_heartbeat_s() == 1.0
        monkeypatch.setenv("REPRO_SERVING_HEARTBEAT_S", "0")
        assert config.serving_heartbeat_s() == 0.01

    def test_hang_timeout_default_and_floor(self, monkeypatch):
        assert config.serving_hang_timeout_s() == 30.0
        monkeypatch.setenv("REPRO_SERVING_HANG_TIMEOUT_S", "0.5")
        assert config.serving_hang_timeout_s() == 0.5
        monkeypatch.setenv("REPRO_SERVING_HANG_TIMEOUT_S", "0")
        assert config.serving_hang_timeout_s() == 0.1

    def test_drain_and_join_timeouts(self, monkeypatch):
        assert config.serving_drain_timeout_s() == 120.0
        assert config.serving_join_timeout_s() == 10.0
        monkeypatch.setenv("REPRO_SERVING_DRAIN_TIMEOUT_S", "0.25")
        monkeypatch.setenv("REPRO_SERVING_JOIN_TIMEOUT_S", "0.01")
        assert config.serving_drain_timeout_s() == 1.0
        assert config.serving_join_timeout_s() == 0.1

    def test_malformed_lifecycle_knob_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_QUEUE_LIMIT", "plenty")
        with pytest.warns(UserWarning, match="REPRO_SERVING_QUEUE_LIMIT"):
            assert config.serving_queue_limit() == 0


# ---------------------------------------------------------------------------
# Fault-injection knobs
# ---------------------------------------------------------------------------

class TestFaultKnobs:
    def test_spec_default_empty_and_stripped(self, monkeypatch):
        assert config.faults_spec() == ""
        monkeypatch.setenv("REPRO_FAULTS", "  a.b=error  ")
        assert config.faults_spec() == "a.b=error"

    def test_seed_default_and_override(self, monkeypatch):
        assert config.faults_seed() == 0
        monkeypatch.setenv("REPRO_FAULTS_SEED", "11")
        assert config.faults_seed() == 11


# ---------------------------------------------------------------------------
# Store retry / breaker knobs
# ---------------------------------------------------------------------------

class TestStoreRetryKnobs:
    def test_timeout_default_and_floor(self, monkeypatch):
        assert config.store_timeout_s() == 30.0
        monkeypatch.setenv("REPRO_STORE_TIMEOUT_S", "0")
        assert config.store_timeout_s() == 0.1

    def test_retries_default_and_clamp(self, monkeypatch):
        assert config.store_retries() == 2
        monkeypatch.setenv("REPRO_STORE_RETRIES", "-1")
        assert config.store_retries() == 0

    def test_backoff_base_and_cap(self, monkeypatch):
        assert config.store_backoff_ms() == 50.0
        assert config.store_backoff_cap_ms() == 2000.0
        monkeypatch.setenv("REPRO_STORE_BACKOFF_MS", "-10")
        monkeypatch.setenv("REPRO_STORE_BACKOFF_CAP_MS", "100")
        assert config.store_backoff_ms() == 0.0
        assert config.store_backoff_cap_ms() == 100.0

    def test_breaker_thresholds(self, monkeypatch):
        assert config.store_breaker_failures() == 3
        assert config.store_breaker_reset_s() == 30.0
        monkeypatch.setenv("REPRO_STORE_BREAKER_FAILURES", "0")
        monkeypatch.setenv("REPRO_STORE_BREAKER_RESET_S", "5")
        assert config.store_breaker_failures() == 0   # 0 disables the breaker
        assert config.store_breaker_reset_s() == 5.0

    def test_malformed_store_knob_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_RETRIES", "many")
        with pytest.warns(UserWarning, match="REPRO_STORE_RETRIES"):
            assert config.store_retries() == 2


# ---------------------------------------------------------------------------
# Engine knobs
# ---------------------------------------------------------------------------

class TestEngineKnobs:
    def test_workers(self, monkeypatch):
        assert config.engine_workers() == 0
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "4")
        assert config.engine_workers() == 4

    def test_persist(self, monkeypatch):
        assert config.engine_persist() is False
        monkeypatch.setenv("REPRO_ENGINE_PERSIST", "1")
        assert config.engine_persist() is True
        monkeypatch.setenv("REPRO_ENGINE_PERSIST", "maybe")
        assert config.engine_persist() is False

    def test_cache_dir_override_and_default(self, monkeypatch):
        assert config.engine_cache_dir() == \
            Path.home() / ".cache" / "repro" / "engine"
        monkeypatch.setenv("REPRO_ENGINE_CACHE_DIR", "/tmp/engine-store")
        assert config.engine_cache_dir() == Path("/tmp/engine-store")

    def test_cache_dir_expands_user(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CACHE_DIR", "~/engine-store")
        assert config.engine_cache_dir() == Path.home() / "engine-store"

    def test_store_socket_default_empty(self, monkeypatch):
        assert config.engine_store_socket() == ""
        monkeypatch.setenv("REPRO_ENGINE_STORE_SOCKET", " /tmp/store.sock ")
        assert config.engine_store_socket() == "/tmp/store.sock"


# ---------------------------------------------------------------------------
# Durable-training knobs
# ---------------------------------------------------------------------------

class TestDurabilityKnobs:
    def test_ckpt_dir_default_off_and_stripped(self, monkeypatch):
        assert config.ckpt_dir() == ""
        monkeypatch.setenv("REPRO_CKPT_DIR", "  /tmp/ring  ")
        assert config.ckpt_dir() == "/tmp/ring"

    def test_ckpt_every_steps_default_and_clamp(self, monkeypatch):
        assert config.ckpt_every_steps() == 0
        monkeypatch.setenv("REPRO_CKPT_EVERY_STEPS", "25")
        assert config.ckpt_every_steps() == 25
        monkeypatch.setenv("REPRO_CKPT_EVERY_STEPS", "-5")
        assert config.ckpt_every_steps() == 0

    def test_ckpt_keep_default_and_floor(self, monkeypatch):
        assert config.ckpt_keep() == 3
        monkeypatch.setenv("REPRO_CKPT_KEEP", "7")
        assert config.ckpt_keep() == 7
        monkeypatch.setenv("REPRO_CKPT_KEEP", "0")
        assert config.ckpt_keep() == 1

    def test_sentinel_grad_mult_default_and_floor(self, monkeypatch):
        assert config.train_sentinel_grad_mult() == 25.0
        monkeypatch.setenv("REPRO_TRAIN_SENTINEL_GRAD_MULT", "8.5")
        assert config.train_sentinel_grad_mult() == 8.5
        monkeypatch.setenv("REPRO_TRAIN_SENTINEL_GRAD_MULT", "0.2")
        assert config.train_sentinel_grad_mult() == 1.0

    def test_rollback_budget_default_and_clamp(self, monkeypatch):
        assert config.train_rollback_budget() == 3
        monkeypatch.setenv("REPRO_TRAIN_ROLLBACK_BUDGET", "9")
        assert config.train_rollback_budget() == 9
        monkeypatch.setenv("REPRO_TRAIN_ROLLBACK_BUDGET", "-1")
        assert config.train_rollback_budget() == 0

    def test_malformed_durability_knob_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_EVERY_STEPS", "often")
        with pytest.warns(UserWarning, match="REPRO_CKPT_EVERY_STEPS"):
            assert config.ckpt_every_steps() == 0
        monkeypatch.setenv("REPRO_TRAIN_SENTINEL_GRAD_MULT", "huge")
        with pytest.warns(UserWarning, match="REPRO_TRAIN_SENTINEL_GRAD_MULT"):
            assert config.train_sentinel_grad_mult() == 25.0
