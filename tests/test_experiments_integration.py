"""Integration tests: experiment harnesses and the end-to-end co-design facade.

These use deliberately tiny budgets — they check that every harness runs end
to end and produces structurally correct, bounded results, not that it reaches
paper-level fidelity (the benchmarks under benchmarks/ do the latter).
"""

import numpy as np
import pytest

from repro.accelerator.optimizer import OptimizerConfig
from repro.attacks import FGSM, eps_from_255
from repro.core import TwoInOneSystem
from repro.experiments import (
    ExperimentBudget,
    dataflow_optimizer_ablation,
    dnnguard_comparison,
    energy_breakdown_comparison,
    format_table,
    mac_area_breakdown,
    mac_cycle_counts,
    mac_unit_comparison,
    normalized_energy_table,
    normalized_throughput_table,
    throughput_vs_precision,
)
from repro.quantization import PrecisionSet

TINY = ExperimentBudget(train_size=160, test_size=64, eval_size=32, epochs=1,
                        batch_size=48, model_scale=4, attack_steps=1,
                        eval_attack_steps=3, seed=0)
FAST_OPT = OptimizerConfig(population_size=6, total_cycles=1, seed=0)


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "longer"}]
        text = format_table(rows)
        assert "a" in text and "longer" in text
        assert len(text.splitlines()) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"


class TestExperimentBudget:
    def test_presets_ordered_by_size(self):
        quick = ExperimentBudget.quick()
        full = ExperimentBudget.full()
        assert quick.train_size < full.train_size
        assert quick.epochs < full.epochs


class TestMACExperiments:
    def test_cycle_counts_match_fig4(self):
        counts = mac_cycle_counts(8)
        assert counts == {"temporal": 8.0, "spatial": 1.0, "spatial_temporal": 4.0}

    def test_area_breakdown_rows(self):
        rows = mac_area_breakdown()
        assert {row["design"] for row in rows} == {"temporal", "spatial", "ours"}
        for row in rows:
            total = row["multiplier (%)"] + row["shift_add (%)"] + row["register (%)"]
            assert total == pytest.approx(100.0, abs=0.1)

    def test_mac_unit_comparison_matches_paper(self):
        ratios = mac_unit_comparison(8)
        assert ratios["throughput_per_area_ratio"] == pytest.approx(2.3, rel=0.05)
        assert ratios["energy_efficiency_ratio"] == pytest.approx(4.88, rel=0.05)


class TestAcceleratorExperiments:
    def test_throughput_vs_precision_is_monotone_for_ours(self):
        rows = throughput_vs_precision(network="resnet18", dataset="cifar10",
                                       precisions=(4, 8, 16),
                                       optimizer_config=FAST_OPT)
        ours = [row["2-in-1"] for row in rows]
        assert ours[0] > ours[1] > ours[2]

    def test_normalized_throughput_table_shape(self):
        rows = normalized_throughput_table(precisions=(4, 16),
                                           workloads=[("resnet18", "cifar10")],
                                           optimizer_config=FAST_OPT)
        assert len(rows) == 2
        for row in rows:
            assert row["BitFusion"] == 1.0
            assert row["2-in-1"] > 1.0
        low = next(r for r in rows if r["precision"] == 4)
        high = next(r for r in rows if r["precision"] == 16)
        assert low["Stripes"] < 1.0 < high["Stripes"]

    def test_normalized_energy_table_ours_wins(self):
        rows = normalized_energy_table(precisions=(4,),
                                       workloads=[("resnet18", "cifar10")],
                                       optimizer_config=FAST_OPT)
        assert rows[0]["2-in-1"] > 1.0

    def test_energy_breakdown_sums_to_100(self):
        rows = energy_breakdown_comparison(precision=4,
                                           workloads=[("resnet18", "cifar10")],
                                           optimizer_config=FAST_OPT)
        assert {row["design"] for row in rows} == {"BitFusion", "2-in-1"}
        for row in rows:
            total = (row["DRAM (%)"] + row["SRAM (%)"] + row["MAC (%)"]
                     + row["RF (%)"])
            assert total == pytest.approx(100.0, abs=0.5)

    def test_dnnguard_comparison_order_of_magnitude(self):
        rows = dnnguard_comparison(networks=[("alexnet", "imagenet")],
                                   optimizer_config=FAST_OPT)
        row = rows[0]
        assert row["speedup 4~8-bit"] > 3.0
        assert row["speedup 4~8-bit"] > row["speedup 4~16-bit"]

    def test_dataflow_ablation_speedup_above_one(self):
        result = dataflow_optimizer_ablation(network="alexnet", dataset="imagenet",
                                             precision=4, max_layers=3,
                                             optimizer_config=FAST_OPT)
        assert result["speedup"] >= 1.0


class TestCoDesignSystem:
    def test_report_combines_algorithm_and_hardware(self, trained_rps_model,
                                                    tiny_dataset, precision_set):
        from repro.accelerator import TwoInOneAccelerator
        system = TwoInOneSystem(
            trained_rps_model, precision_set,
            accelerator=TwoInOneAccelerator(optimizer_config=FAST_OPT),
            workload="resnet18", workload_dataset="cifar10")
        report = system.report(tiny_dataset.x_test[:32], tiny_dataset.y_test[:32],
                               attack=FGSM(eps_from_255(16)))
        assert 0 <= report.natural_accuracy <= 1
        assert 0 <= report.robust_accuracy <= 1
        assert report.average_fps > 0
        assert report.average_energy > 0
        as_dict = report.as_dict()
        assert as_dict["precisions"] == list(precision_set.keys)

    def test_trainer_precision_set_must_match(self, trained_rps_model,
                                              precision_set, tiny_dataset):
        from repro.core import RPSConfig
        system = TwoInOneSystem(trained_rps_model, precision_set,
                                workload="resnet18", workload_dataset="cifar10")
        with pytest.raises(ValueError):
            system.train(tiny_dataset, RPSConfig(precision_set=PrecisionSet([4, 8])))
