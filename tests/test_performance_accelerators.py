"""Tests for the analytical performance model, the evolutionary optimizer and
the complete accelerator front-ends."""

import numpy as np
import pytest

from repro.accelerator import (
    ArrayConfig,
    BitFusionAccelerator,
    COMPUTE_AREA_BUDGET,
    DNNGuardAccelerator,
    Dataflow,
    InvalidMappingError,
    PerformanceModel,
    SpatialTemporalMAC,
    StripesAccelerator,
    TwoInOneAccelerator,
    default_dataflow,
    default_hierarchy,
    network_layers,
)
from repro.accelerator.optimizer import (
    EvolutionaryDataflowOptimizer,
    MicroArchitectureSearch,
    OptimizerConfig,
)
from repro.accelerator.workload import LayerShape


@pytest.fixture(scope="module")
def small_layer():
    return LayerShape("conv", n=1, k=64, c=32, y=16, x=16, r=3, s=3)


@pytest.fixture(scope="module")
def model():
    array = ArrayConfig(mac_unit=SpatialTemporalMAC(), num_units=256)
    return PerformanceModel(array, default_hierarchy())


class TestPerformanceModel:
    def test_evaluate_basic_quantities(self, model, small_layer):
        flow = default_dataflow(small_layer, model.array.num_units)
        perf = model.evaluate(small_layer, flow, 8)
        assert perf.compute_cycles > 0
        assert perf.total_energy > 0
        assert 0 < perf.spatial_utilization <= 1
        assert 0 < perf.mapping_efficiency <= 1
        assert set(perf.energy_breakdown) == {"MAC", "DRAM", "GlobalBuffer",
                                              "RegisterFile"}

    def test_total_cycles_is_max_of_compute_and_memory(self, model, small_layer):
        flow = default_dataflow(small_layer, model.array.num_units)
        perf = model.evaluate(small_layer, flow, 8)
        assert perf.total_cycles == pytest.approx(
            max(perf.compute_cycles, *perf.memory_cycles.values()))
        assert perf.is_memory_bound == (perf.total_cycles > perf.compute_cycles)

    def test_lower_precision_is_faster_and_cheaper(self, model, small_layer):
        flow = default_dataflow(small_layer, model.array.num_units)
        perf4 = model.evaluate(small_layer, flow, 4)
        perf8 = model.evaluate(small_layer, flow, 8)
        assert perf4.compute_cycles < perf8.compute_cycles
        assert perf4.total_energy < perf8.total_energy

    def test_dram_traffic_at_least_tensor_sizes(self, model, small_layer):
        """Every weight/input element must cross the DRAM boundary at least once."""
        flow = default_dataflow(small_layer, model.array.num_units)
        perf = model.evaluate(small_layer, flow, 8)
        sizes = small_layer.tensor_sizes()
        assert perf.traffic_bits["DRAM"]["weights"] >= sizes["weights"] * 8
        assert perf.traffic_bits["DRAM"]["outputs"] >= sizes["outputs"] * 8

    def test_spatial_overflow_rejected(self, model, small_layer):
        flow = Dataflow(tiling={"Spatial": {"K": 64, "C": 32}})
        with pytest.raises(InvalidMappingError):
            model.check_mapping(small_layer, flow, 8)

    def test_uncovered_layer_rejected(self, model, small_layer):
        flow = Dataflow(tiling={"Spatial": {"K": 2}})
        with pytest.raises(InvalidMappingError):
            model.check_mapping(small_layer, flow, 8)

    def test_capacity_overflow_rejected(self, small_layer):
        tiny_memory = default_hierarchy().scaled(buffer_scale=1e-5)
        array = ArrayConfig(mac_unit=SpatialTemporalMAC(), num_units=256)
        constrained = PerformanceModel(array, tiny_memory)
        flow = default_dataflow(small_layer, 256)
        assert not constrained.is_valid(small_layer, flow, 8)

    def test_loop_order_changes_traffic(self, model, small_layer):
        """Weight-stationary vs output-stationary DRAM orders move different bits."""
        base = default_dataflow(small_layer, model.array.num_units)
        weight_stationary = base.copy()
        weight_stationary.loop_order["DRAM"] = ["K", "C", "R", "S", "N", "Y", "X"]
        output_stationary = base.copy()
        output_stationary.loop_order["DRAM"] = ["N", "Y", "X", "K", "C", "R", "S"]
        # Force several DRAM-level iterations so the order matters (the extra
        # factors over-cover the layer, which the model treats as padding).
        for flow in (weight_stationary, output_stationary):
            flow.tiling["DRAM"]["Y"] = 4
            flow.tiling["DRAM"]["K"] = 4
        tw = model.evaluate(small_layer, weight_stationary, 8).traffic_bits["DRAM"]
        to = model.evaluate(small_layer, output_stationary, 8).traffic_bits["DRAM"]
        assert tw != to

    def test_network_evaluation_aggregates(self, model):
        layers = network_layers("alexnet", "imagenet")[:3]
        flows = [default_dataflow(l, model.array.num_units) for l in layers]
        perf = model.evaluate_network(layers, flows, 8)
        assert perf.total_cycles == pytest.approx(
            sum(p.total_cycles for p in perf.layers))
        assert perf.throughput_fps > 0
        assert perf.energy_breakdown()["MAC"] > 0

    def test_network_evaluation_length_mismatch(self, model):
        layers = network_layers("alexnet", "imagenet")[:2]
        with pytest.raises(ValueError):
            model.evaluate_network(layers, [], 8)


class TestEvolutionaryOptimizer:
    def test_optimizer_never_worse_than_default(self, model, small_layer):
        config = OptimizerConfig(population_size=10, total_cycles=3, seed=1)
        optimizer = EvolutionaryDataflowOptimizer(model, config)
        _, best = optimizer.optimize_layer(small_layer, 8)
        baseline = model.evaluate(small_layer,
                                  default_dataflow(small_layer,
                                                   model.array.num_units), 8)
        best_score = best.total_cycles * best.total_energy
        base_score = baseline.total_cycles * baseline.total_energy
        assert best_score <= base_score * 1.001

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            OptimizerConfig(objective="throughput^2")
        with pytest.raises(ValueError):
            OptimizerConfig(survivor_fraction=0.0)

    def test_latency_objective_optimizes_cycles(self, model, small_layer):
        optimizer = EvolutionaryDataflowOptimizer(
            model, OptimizerConfig(population_size=8, total_cycles=2,
                                   objective="latency", seed=0))
        flow, perf = optimizer.optimize_layer(small_layer, 4)
        assert model.is_valid(small_layer, flow, 4)
        assert perf.total_cycles > 0

    def test_optimize_network_returns_one_mapping_per_layer(self, model):
        layers = network_layers("alexnet", "imagenet")[:2]
        optimizer = EvolutionaryDataflowOptimizer(
            model, OptimizerConfig(population_size=6, total_cycles=1))
        results = optimizer.optimize_network(layers, 8)
        assert len(results) == 2

    def test_microarchitecture_search_ranks_candidates(self):
        layers = [LayerShape("conv", n=1, k=32, c=16, y=8, x=8, r=3, s=3)]
        search = MicroArchitectureSearch(
            mac_unit_factory=SpatialTemporalMAC,
            area_budget=COMPUTE_AREA_BUDGET,
            unit_counts=(64, 128),
            buffer_scales=(1.0,),
            optimizer_config=OptimizerConfig(population_size=6, total_cycles=1))
        candidates = search.search(layers, precisions=(4, 8))
        assert len(candidates) == 2
        scores = [c.average_score for c in candidates]
        assert scores == sorted(scores)
        assert all(c.compute_area <= COMPUTE_AREA_BUDGET for c in candidates)


@pytest.fixture(scope="module")
def fast_optimizer_config():
    return OptimizerConfig(population_size=8, total_cycles=2, seed=0)


@pytest.fixture(scope="module")
def accelerators(fast_optimizer_config):
    return {
        "ours": TwoInOneAccelerator(optimizer_config=fast_optimizer_config),
        "bitfusion": BitFusionAccelerator(),
        "stripes": StripesAccelerator(optimizer_config=fast_optimizer_config),
        "dnnguard": DNNGuardAccelerator(),
    }


@pytest.fixture(scope="module")
def cifar_layers():
    return network_layers("resnet18", "cifar10")


class TestAccelerators:
    def test_equal_area_budget(self, accelerators):
        areas = {name: acc.compute_area for name, acc in accelerators.items()}
        assert len(set(areas.values())) == 1

    def test_unit_counts_follow_unit_area(self, accelerators):
        assert accelerators["ours"].num_units > accelerators["bitfusion"].num_units
        assert accelerators["stripes"].num_units > accelerators["bitfusion"].num_units

    def test_describe(self, accelerators):
        info = accelerators["ours"].describe()
        assert info["name"] == "2-in-1"
        assert info["num_units"] == accelerators["ours"].num_units

    @pytest.mark.parametrize("precision", [4, 8])
    def test_ours_beats_baselines_in_throughput(self, accelerators, cifar_layers,
                                                precision):
        ours = accelerators["ours"].throughput_fps(cifar_layers, precision)
        assert ours > accelerators["bitfusion"].throughput_fps(cifar_layers, precision)
        assert ours > accelerators["stripes"].throughput_fps(cifar_layers, precision)

    @pytest.mark.parametrize("precision", [4, 8])
    def test_ours_beats_baselines_in_energy(self, accelerators, cifar_layers,
                                            precision):
        ours = accelerators["ours"].energy_per_inference(cifar_layers, precision)
        assert ours < accelerators["bitfusion"].energy_per_inference(cifar_layers, precision)
        assert ours < accelerators["stripes"].energy_per_inference(cifar_layers, precision)

    def test_bitfusion_beats_stripes_at_low_precision_only(self, accelerators,
                                                           cifar_layers):
        bf4 = accelerators["bitfusion"].throughput_fps(cifar_layers, 4)
        st4 = accelerators["stripes"].throughput_fps(cifar_layers, 4)
        bf16 = accelerators["bitfusion"].throughput_fps(cifar_layers, 16)
        st16 = accelerators["stripes"].throughput_fps(cifar_layers, 16)
        assert bf4 > st4
        assert st16 > bf16

    def test_throughput_decreases_with_precision(self, accelerators, cifar_layers):
        ours = accelerators["ours"]
        fps = [ours.throughput_fps(cifar_layers, p) for p in (4, 8, 16)]
        assert fps[0] > fps[1] > fps[2]

    def test_dataflow_cache_reused(self, accelerators, cifar_layers):
        ours = accelerators["ours"]
        ours.throughput_fps(cifar_layers[:1], 4)
        cached = len(ours._dataflow_cache)
        ours.throughput_fps(cifar_layers[:1], 4)
        assert len(ours._dataflow_cache) == cached

    def test_dnnguard_adds_detection_layer(self, accelerators, cifar_layers):
        extra = accelerators["dnnguard"].extra_layers(cifar_layers)
        assert len(extra) == 1
        assert extra[0].name == "detection-network"

    def test_ours_much_better_than_dnnguard_throughput_per_area(self, accelerators,
                                                                cifar_layers):
        ours = accelerators["ours"]
        guard = accelerators["dnnguard"]
        ours_tpa = ours.average_throughput_fps(cifar_layers, (4, 6, 8)) / ours.compute_area
        guard_tpa = guard.throughput_fps(cifar_layers, 16) / guard.compute_area
        assert ours_tpa / guard_tpa > 3.0

    def test_rps_average_metrics(self, accelerators, cifar_layers):
        from repro.quantization import PrecisionSet
        metrics = accelerators["ours"].rps_average_metrics(
            cifar_layers, PrecisionSet([4, 8]))
        fps4 = accelerators["ours"].throughput_fps(cifar_layers, 4)
        fps8 = accelerators["ours"].throughput_fps(cifar_layers, 8)
        assert metrics["average_fps"] == pytest.approx((fps4 + fps8) / 2, rel=1e-6)
        assert metrics["average_energy"] > 0
