"""Shared fixtures: tiny datasets and models sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_dataset
from repro.models import preact_resnet18
from repro.quantization import PrecisionSet


@pytest.fixture(autouse=True)
def _no_ambient_engine_persistence(monkeypatch):
    """Insulate unit tests from environment-driven engine persistence.

    CI exports ``REPRO_ENGINE_PERSIST=1`` with a run-to-run cache so the
    figure *benchmarks* start warm, but the unit tests assert cold-start
    behaviour (miss counts, invalidation re-simulation) that a restored
    ambient cache would flip.  Tests that exercise persistence pass
    ``persist=True`` explicitly, which overrides this default.
    """
    monkeypatch.setenv("REPRO_ENGINE_PERSIST", "0")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small synthetic CIFAR-10-like dataset (fast to train on)."""
    return make_dataset("cifar10", train_size=640, test_size=96)


@pytest.fixture(scope="session")
def precision_set():
    return PrecisionSet([3, 4, 6])


@pytest.fixture()
def tiny_model(tiny_dataset):
    """A narrow PreActResNet without switchable BN."""
    return preact_resnet18(num_classes=tiny_dataset.num_classes, width=8,
                           blocks_per_stage=(1, 1), seed=0)


@pytest.fixture()
def tiny_rps_model(tiny_dataset, precision_set):
    """A narrow PreActResNet with switchable BN for the precision set."""
    return preact_resnet18(num_classes=tiny_dataset.num_classes, width=8,
                           blocks_per_stage=(1, 1), precisions=precision_set,
                           seed=0)


@pytest.fixture(scope="session")
def trained_rps_model(tiny_dataset, precision_set):
    """An RPS-trained tiny model shared by the slower evaluation tests."""
    from repro.core import RPSConfig, RPSTrainer

    model = preact_resnet18(num_classes=tiny_dataset.num_classes, width=8,
                            blocks_per_stage=(1, 1), precisions=precision_set,
                            seed=0)
    config = RPSConfig(epochs=3, batch_size=48, lr=0.1, method="fgsm_rs",
                       epsilon=16 / 255, precision_set=precision_set, seed=0)
    trainer = RPSTrainer(model, config)
    trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train)
    return model
