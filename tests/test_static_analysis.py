"""Tier-1 gate + engine coverage for :mod:`repro.analysis`.

Three layers under test:

* the tree itself — the whole ``repro`` package must lint clean against the
  *committed* baseline (which is empty: genuine findings get fixed, not
  baselined), and the ctypes ↔ C ABI cross-check must pass;
* the lint engine — waivers, fingerprint stability, baseline application
  and parse-error containment, each pinned on tiny fixture trees;
* every rule — one positive hit, one clean idiom, plus the specific
  near-misses each rule promises not to flag (``lock.acquire()``,
  ``default_rng(0)``, view aliases, closures, …);
* the ABI checker — a synthetic prototype pair mutated one axis at a time
  (arity, width, const-ness, restype, staleness, version skew), and the
  real conv.c/build.py pair held to explicit-everything.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (DEFAULT_BASELINE, LintEngine, apply_baseline,
                            check_abi, load_baseline, write_baseline)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.abi import (parse_c_exports, parse_py_bindings,
                                signature_digest)
from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.atomic_write_discipline import AtomicWriteDiscipline
from repro.analysis.rules.config_discipline import ConfigDiscipline
from repro.analysis.rules.fork_safety import ForkSafety
from repro.analysis.rules.no_unbounded_wait import NoUnboundedWait
from repro.analysis.rules.rng_discipline import RngDiscipline
from repro.analysis.rules.time_seed import TimeSeed
from repro.analysis.rules.workspace_pairing import WorkspacePairing
from repro.nn.native import build as native_build

REPRO_ROOT = Path(repro.__file__).resolve().parent


def lint_tree(tmp_path: Path, files: dict, rules=None):
    """Write ``files`` (relpath -> source) under tmp_path/pkg and lint it."""
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    engine = LintEngine(rules=rules)
    return engine.run(root)


def rules_hit(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# The gate: the real tree is clean
# ---------------------------------------------------------------------------

class TestTreeIsClean:
    def test_lint_clean_against_committed_baseline(self):
        findings = LintEngine().run(REPRO_ROOT)
        baseline = load_baseline(DEFAULT_BASELINE)
        fresh, _suppressed, _stale = apply_baseline(findings, baseline)
        assert fresh == [], "\n".join(f.format() for f in fresh)

    def test_committed_baseline_is_empty(self):
        # The PR contract: genuine findings are *fixed*, not baselined.
        assert load_baseline(DEFAULT_BASELINE) == []

    def test_abi_cross_check_clean(self):
        findings = check_abi()
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_digest_constant_matches_sources(self):
        assert native_build.ABI_SIGNATURE_DIGEST == signature_digest()


# ---------------------------------------------------------------------------
# Engine mechanics: waivers, fingerprints, baselines, parse errors
# ---------------------------------------------------------------------------

VIOLATION = "import os\nTOKEN = os.environ['REPRO_TOKEN']\n"


class TestWaivers:
    def test_named_noqa_waives_the_finding(self, tmp_path):
        src = "import os\nTOKEN = os.environ['T']  # repro: noqa[config-discipline]\n"
        assert lint_tree(tmp_path, {"mod.py": src},
                         rules=[ConfigDiscipline()]) == []

    def test_bare_noqa_waives_everything_on_the_line(self, tmp_path):
        src = "import os\nTOKEN = os.environ['T']  # repro: noqa\n"
        assert lint_tree(tmp_path, {"mod.py": src},
                         rules=[ConfigDiscipline()]) == []

    def test_noqa_for_a_different_rule_does_not_waive(self, tmp_path):
        src = "import os\nTOKEN = os.environ['T']  # repro: noqa[rng-discipline]\n"
        findings = lint_tree(tmp_path, {"mod.py": src},
                             rules=[ConfigDiscipline()])
        assert rules_hit(findings) == {"config-discipline"}


class TestFingerprintsAndBaseline:
    def test_fingerprint_survives_line_number_drift(self, tmp_path):
        before = lint_tree(tmp_path, {"mod.py": VIOLATION},
                           rules=[ConfigDiscipline()])
        shifted = "import os\n\n# a new comment pushes the line down\n" \
                  "TOKEN = os.environ['REPRO_TOKEN']\n"
        after = lint_tree(tmp_path, {"mod.py": shifted},
                          rules=[ConfigDiscipline()])
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint

    def test_duplicate_lines_get_distinct_fingerprints(self, tmp_path):
        src = ("import os\n"
               "A = os.environ['X']\n"
               "A = os.environ['X']\n")
        findings = lint_tree(tmp_path, {"mod.py": src},
                             rules=[ConfigDiscipline()])
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_baseline_suppresses_then_goes_stale(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": VIOLATION},
                             rules=[ConfigDiscipline()])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        baseline = load_baseline(baseline_path)

        fresh, suppressed, stale = apply_baseline(findings, baseline)
        assert fresh == [] and len(suppressed) == 1 and stale == []

        # Fix the violation: the entry is now stale, nothing is suppressed.
        fresh, suppressed, stale = apply_baseline([], baseline)
        assert fresh == [] and suppressed == [] and len(stale) == 1

    def test_unsupported_baseline_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestParseErrors:
    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        files = {"broken.py": "def f(:\n", "mod.py": VIOLATION}
        findings = lint_tree(tmp_path, files, rules=[ConfigDiscipline()])
        assert rules_hit(findings) == {"parse-error", "config-discipline"}


# ---------------------------------------------------------------------------
# config-discipline
# ---------------------------------------------------------------------------

class TestConfigDiscipline:
    RULES = [ConfigDiscipline()]

    def test_environ_read_is_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": VIOLATION}, self.RULES)
        assert rules_hit(findings) == {"config-discipline"}

    def test_getenv_through_from_import_is_flagged(self, tmp_path):
        src = "from os import getenv\nTOKEN = getenv('T')\n"
        findings = lint_tree(tmp_path, {"mod.py": src}, self.RULES)
        assert rules_hit(findings) == {"config-discipline"}

    def test_config_module_itself_is_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {"config.py": VIOLATION}, self.RULES) == []

    def test_os_path_is_not_flagged(self, tmp_path):
        src = "import os\nHERE = os.path.dirname(__file__)\n"
        assert lint_tree(tmp_path, {"mod.py": src}, self.RULES) == []


# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------

class TestRngDiscipline:
    RULES = [RngDiscipline()]

    def test_global_stream_call_is_flagged(self, tmp_path):
        src = "import numpy as np\nX = np.random.rand(3)\n"
        findings = lint_tree(tmp_path, {"mod.py": src}, self.RULES)
        assert rules_hit(findings) == {"rng-discipline"}

    def test_global_seed_is_flagged(self, tmp_path):
        src = "import numpy as np\nnp.random.seed(0)\n"
        findings = lint_tree(tmp_path, {"mod.py": src}, self.RULES)
        assert rules_hit(findings) == {"rng-discipline"}

    def test_from_import_of_global_function_is_flagged(self, tmp_path):
        src = "from numpy.random import rand\nX = rand(3)\n"
        findings = lint_tree(tmp_path, {"mod.py": src}, self.RULES)
        assert rules_hit(findings) == {"rng-discipline"}

    def test_default_rng_is_clean(self, tmp_path):
        src = ("import numpy as np\n"
               "from numpy.random import default_rng\n"
               "A = np.random.default_rng(0)\n"
               "B = default_rng(1)\n")
        assert lint_tree(tmp_path, {"mod.py": src}, self.RULES) == []

    def test_unrelated_random_attribute_is_clean(self, tmp_path):
        src = "import mylib\nX = mylib.random.rand(3)\n"
        assert lint_tree(tmp_path, {"mod.py": src}, self.RULES) == []


# ---------------------------------------------------------------------------
# workspace-pairing
# ---------------------------------------------------------------------------

class TestWorkspacePairing:
    RULES = [WorkspacePairing()]

    def _lint(self, tmp_path, body):
        return lint_tree(tmp_path, {"mod.py": body}, self.RULES)

    def test_dropped_buffer_is_flagged(self, tmp_path):
        src = ("def f(ws, x):\n"
               "    buf = ws.acquire(x.shape)\n"
               "    buf[:] = x\n")
        assert rules_hit(self._lint(tmp_path, src)) == {"workspace-pairing"}

    def test_release_pairs_the_acquire(self, tmp_path):
        src = ("def f(ws, x):\n"
               "    buf = ws.acquire(x.shape)\n"
               "    buf[:] = x\n"
               "    ws.release(buf)\n")
        assert self._lint(tmp_path, src) == []

    def test_return_escape_is_a_discharge(self, tmp_path):
        src = ("def f(ws, x):\n"
               "    buf = ws.acquire(x.shape)\n"
               "    return buf\n")
        assert self._lint(tmp_path, src) == []

    def test_view_alias_escape_discharges_the_buffer(self, tmp_path):
        # out is a *view* of buf; returning it keeps the allocation alive.
        src = ("def f(ws, n):\n"
               "    buf = ws.acquire((n, n))\n"
               "    out = buf.reshape(n * n).transpose()\n"
               "    return out\n")
        assert self._lint(tmp_path, src) == []

    def test_fresh_array_result_does_not_alias(self, tmp_path):
        # The plan.py regression shape: a matmul result is a *new* array,
        # so returning it must NOT discharge the staging buffer.
        src = ("def f(ws, x, w):\n"
               "    staged = ws.acquire(x.shape)\n"
               "    staged[:] = x\n"
               "    out = staged @ w\n"
               "    return out\n")
        assert rules_hit(self._lint(tmp_path, src)) == {"workspace-pairing"}

    def test_end_step_boundary_covers_everything(self, tmp_path):
        src = ("def f(ws, x):\n"
               "    buf = ws.acquire(x.shape)\n"
               "    buf[:] = x\n"
               "    ws.end_step()\n")
        assert self._lint(tmp_path, src) == []

    def test_closure_capture_is_a_discharge(self, tmp_path):
        src = ("def f(ws, x):\n"
               "    buf = ws.acquire(x.shape)\n"
               "    def backward(g):\n"
               "        g += buf\n"
               "    return backward\n")
        assert self._lint(tmp_path, src) == []

    def test_adopt_call_is_a_discharge(self, tmp_path):
        src = ("def f(ws, x, pool):\n"
               "    buf = ws.acquire(x.shape)\n"
               "    pool.append(buf)\n")
        assert self._lint(tmp_path, src) == []

    def test_unbound_acquire_is_flagged(self, tmp_path):
        src = ("def f(ws, x):\n"
               "    ws.acquire(x.shape)\n")
        findings = self._lint(tmp_path, src)
        assert len(findings) == 1
        assert "never be released" in findings[0].message

    def test_threading_lock_acquire_is_not_flagged(self, tmp_path):
        src = ("def f(lock):\n"
               "    lock.acquire()\n"
               "    lock.release()\n")
        assert self._lint(tmp_path, src) == []


# ---------------------------------------------------------------------------
# fork-safety
# ---------------------------------------------------------------------------

FLEET_TREE = {
    "__init__.py": "",
    "serving/__init__.py": "",
    "serving/fleet.py": "from pkg import util\n",
    "util.py": "import threading\n_LOCK = threading.Lock()\n",
}


class TestForkSafety:
    RULES = [ForkSafety()]

    def test_import_time_lock_in_worker_closure_is_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, FLEET_TREE, self.RULES)
        assert rules_hit(findings) == {"fork-safety"}
        assert findings[0].path.endswith("util.py")

    def test_lazy_construction_is_clean(self, tmp_path):
        files = dict(FLEET_TREE)
        files["util.py"] = ("import threading\n"
                            "def make_lock():\n"
                            "    return threading.Lock()\n")
        assert lint_tree(tmp_path, files, self.RULES) == []

    def test_module_outside_the_closure_is_not_flagged(self, tmp_path):
        files = dict(FLEET_TREE)
        files["serving/fleet.py"] = "VALUE = 1\n"     # no import of util
        assert lint_tree(tmp_path, files, self.RULES) == []

    def test_class_body_counts_as_import_time(self, tmp_path):
        files = dict(FLEET_TREE)
        files["util.py"] = ("import threading\n"
                            "class Registry:\n"
                            "    lock = threading.Lock()\n")
        findings = lint_tree(tmp_path, files, self.RULES)
        assert rules_hit(findings) == {"fork-safety"}


# ---------------------------------------------------------------------------
# no-naked-time-seed
# ---------------------------------------------------------------------------

class TestTimeSeed:
    RULES = [TimeSeed()]

    def test_time_seeded_generator_is_flagged(self, tmp_path):
        src = ("import time\nimport numpy as np\n"
               "rng = np.random.default_rng(int(time.time()))\n")
        findings = lint_tree(tmp_path, {"mod.py": src}, self.RULES)
        assert rules_hit(findings) == {"no-naked-time-seed"}

    def test_seed_keyword_fed_from_urandom_is_flagged(self, tmp_path):
        src = ("import os\n"
               "def run(make):\n"
               "    return make(seed=int.from_bytes(os.urandom(4), 'little'))\n")
        findings = lint_tree(tmp_path, {"mod.py": src}, self.RULES)
        assert rules_hit(findings) == {"no-naked-time-seed"}

    def test_explicit_seed_is_clean(self, tmp_path):
        src = "import numpy as np\nrng = np.random.default_rng(1234)\n"
        assert lint_tree(tmp_path, {"mod.py": src}, self.RULES) == []

    def test_time_outside_a_seed_sink_is_clean(self, tmp_path):
        src = "import time\nSTART = time.time()\n"
        assert lint_tree(tmp_path, {"mod.py": src}, self.RULES) == []


# ---------------------------------------------------------------------------
# no-unbounded-wait
# ---------------------------------------------------------------------------

SERVING = "repro/serving/loop.py"         # inside the rule's scope


class TestNoUnboundedWait:
    RULES = [NoUnboundedWait()]

    def _lint(self, tmp_path, body, rel=SERVING):
        return lint_tree(tmp_path, {rel: body}, self.RULES)

    @pytest.mark.parametrize("call", [
        "event.wait()",
        "thread.join(timeout=None)",
        "conn.poll(None)",
        "conn.recv()",
        "sock.settimeout(None)",
    ])
    def test_unbounded_blocking_call_is_flagged(self, tmp_path, call):
        src = f"def f(event, thread, conn, sock):\n    {call}\n"
        findings = self._lint(tmp_path, src)
        assert rules_hit(findings) == {"no-unbounded-wait"}

    @pytest.mark.parametrize("call", [
        "event.wait(0.5)",
        "thread.join(timeout=5.0)",
        "conn.poll(timeout)",               # dynamic bound: trusted
        "conn.recv(4096)",                  # socket recv with a size arg
        "sock.settimeout(3.0)",
    ])
    def test_bounded_call_is_clean(self, tmp_path, call):
        src = f"def f(event, thread, conn, sock, timeout):\n    {call}\n"
        assert self._lint(tmp_path, src) == []

    def test_outside_the_serving_scope_is_not_flagged(self, tmp_path):
        src = "def f(event):\n    event.wait()\n"
        assert self._lint(tmp_path, src, rel="repro/training/loop.py") == []

    def test_store_service_is_in_scope_by_suffix(self, tmp_path):
        src = "def f(event):\n    event.wait()\n"
        findings = self._lint(tmp_path, src,
                              rel="repro/accelerator/store_service.py")
        assert rules_hit(findings) == {"no-unbounded-wait"}

    def test_noqa_waives_a_poll_guarded_recv(self, tmp_path):
        src = ("def f(conn):\n"
               "    conn.recv()  # repro: noqa[no-unbounded-wait]\n")
        assert self._lint(tmp_path, src) == []


class TestAtomicWriteDiscipline:
    RULES = [AtomicWriteDiscipline()]
    STORE = "repro/accelerator/engine_store.py"

    def _lint(self, tmp_path, body, rel=STORE):
        return lint_tree(tmp_path, {rel: body}, self.RULES)

    @pytest.mark.parametrize("call", [
        'open(path, "wb")',
        'open(path, "w")',
        'open(path, mode="wb")',
        'open(path, "xb")',
        'open(path, "ab")',
    ])
    def test_write_mode_open_is_flagged(self, tmp_path, call):
        src = f"def save(path, blob):\n    with {call} as fh:\n        fh.write(blob)\n"
        findings = self._lint(tmp_path, src)
        assert rules_hit(findings) == {"atomic-write-discipline"}

    @pytest.mark.parametrize("call", [
        'open(path, "rb")',
        'open(path)',
        'open(path, mode)',                   # dynamic mode: trusted
        'io_atomic.atomic_write_bytes(path, blob)',
        'path.open("wb")',                    # method call, not the builtin
    ])
    def test_reads_and_shared_helper_are_clean(self, tmp_path, call):
        src = f"def save(path, blob, mode, io_atomic):\n    {call}\n"
        assert self._lint(tmp_path, src) == []

    @pytest.mark.parametrize("rel", [
        "repro/checkpoint.py",
        "repro/accelerator/store_service.py",
    ])
    def test_every_persistence_module_is_in_scope(self, tmp_path, rel):
        src = 'def f(path):\n    open(path, "wb")\n'
        findings = self._lint(tmp_path, src, rel=rel)
        assert rules_hit(findings) == {"atomic-write-discipline"}

    def test_outside_persistence_modules_is_not_flagged(self, tmp_path):
        src = 'def f(path):\n    open(path, "wb")\n'
        assert self._lint(tmp_path, src, rel="repro/experiments/report.py") == []

    def test_noqa_waives_a_deliberate_bare_write(self, tmp_path):
        src = ('def f(path):\n'
               '    open(path, "wb")  # repro: noqa[atomic-write-discipline]\n')
        assert self._lint(tmp_path, src) == []


# ---------------------------------------------------------------------------
# ABI checker: synthetic pair, one mutation per axis
# ---------------------------------------------------------------------------

C_DEMO = """
#define REPRO_NATIVE_ABI 2

static void helper(float *x) { (void)x; }

void repro_demo(const float *x, float *y, long n, int k) {
    (void)x; (void)y; (void)n; (void)k;
}
"""

PY_DEMO_TEMPLATE = """
import ctypes

ABI_VERSION = 2
ABI_SIGNATURE_DIGEST = "{digest}"


def _bind(lib):
    f32p = ctypes.POINTER(ctypes.c_float)
    lib.repro_demo.restype = None
    lib.repro_demo.argtypes = [f32p, f32p, ctypes.c_long, ctypes.c_int]
    return lib
"""


def py_demo() -> str:
    return PY_DEMO_TEMPLATE.format(digest=signature_digest(C_DEMO))


def messages(findings):
    return "\n".join(f.format() for f in findings)


class TestAbiChecker:
    def test_matched_pair_is_clean(self):
        assert check_abi(C_DEMO, py_demo()) == []

    def test_static_functions_are_ignored(self):
        exports = parse_c_exports(C_DEMO)
        assert set(exports) == {"repro_demo"}

    def test_dropped_parameter_is_an_arity_finding(self):
        mutated = C_DEMO.replace(", int k", "")
        found = messages(check_abi(mutated, py_demo()))
        assert "4 argtypes" in found and "3 parameters" in found

    def test_width_drift_is_flagged(self):
        mutated = py_demo().replace("ctypes.c_long", "ctypes.c_int")
        found = messages(check_abi(C_DEMO, mutated))
        assert "argtypes[2] is c_int" in found and "`long n` (c_long)" in found

    def test_const_drift_is_caught_by_the_digest_alone(self):
        # ctypes can't express const, so the prototype diff stays clean —
        # the digest is the only tripwire, and it must fire.
        mutated = C_DEMO.replace("const float *x", "float *x")
        findings = check_abi(mutated, py_demo())
        assert len(findings) == 1
        assert "ABI_SIGNATURE_DIGEST" in findings[0].message

    def test_restype_drift_is_flagged(self):
        mutated = C_DEMO.replace("void repro_demo", "int repro_demo")
        found = messages(check_abi(mutated, py_demo()))
        assert "restype is None" in found and "`int`" in found

    def test_renamed_export_yields_missing_and_stale(self):
        mutated = C_DEMO.replace("repro_demo", "repro_demo2")
        found = messages(check_abi(mutated, py_demo()))
        assert "no ctypes binding" in found       # new export unbound
        assert "stale or misspelled" in found     # old binding dangling

    def test_abi_version_skew_is_flagged(self):
        mutated = C_DEMO.replace("#define REPRO_NATIVE_ABI 2",
                                 "#define REPRO_NATIVE_ABI 3")
        found = messages(check_abi(mutated, py_demo()))
        assert "REPRO_NATIVE_ABI=3" in found

    def test_missing_argtypes_is_flagged(self):
        mutated = "\n".join(line for line in py_demo().splitlines()
                            if "argtypes" not in line)
        found = messages(check_abi(C_DEMO, mutated))
        assert "never sets argtypes" in found

    def test_every_real_export_is_explicitly_bound(self):
        # The satellite contract: every exported conv.c symbol declares
        # explicit argtypes and restype — no implicit-int marshalling.
        exports = parse_c_exports()
        bindings = parse_py_bindings()
        assert set(exports) <= set(bindings)
        for name in exports:
            binding = bindings[name]
            assert binding.restype is not None, name
            assert binding.argtypes is not None, name
            assert "<unresolved>" not in [binding.restype] + binding.argtypes


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def _fixture(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "mod.py").write_text(VIOLATION)
        return root

    def test_findings_exit_1_and_print_location(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        code = analysis_main([str(root), "--no-abi",
                              "--baseline", str(tmp_path / "none.json")])
        out = capsys.readouterr().out
        assert code == 1
        assert "mod.py:2" in out and "[config-discipline]" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "mod.py").write_text("X = 1\n")
        assert analysis_main([str(root), "--no-abi"]) == 0

    def test_json_output_shape(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        code = analysis_main([str(root), "--no-abi", "--json",
                              "--baseline", str(tmp_path / "none.json")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["clean"] is False
        assert payload["baselined"] == 0
        [finding] = payload["findings"]
        assert finding["rule"] == "config-discipline"
        assert finding["fingerprint"]

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert analysis_main([str(root), "--no-abi", "--write-baseline",
                              "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        code = analysis_main([str(root), "--no-abi",
                              "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 baselined" in out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert analysis_main([str(tmp_path / "nope"), "--no-abi"]) == 2

    def test_list_rules_names_every_rule(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.name in out

    def test_abi_digest_matches_the_committed_constant(self, capsys):
        assert analysis_main(["--abi-digest"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == native_build.ABI_SIGNATURE_DIGEST
