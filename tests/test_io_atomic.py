"""Contract of :mod:`repro.io_atomic`: atomic renames + checksummed envelopes.

The durability guarantees every persistence module leans on: a write either
lands whole or not at all (old contents survive a failed write, no temp
litter), and a checksummed envelope detects truncation/corruption instead of
handing back garbage bytes.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import io_atomic


class TestAtomicWriteBytes:
    def test_writes_and_returns_path(self, tmp_path):
        path = tmp_path / "sub" / "blob.bin"
        out = io_atomic.atomic_write_bytes(path, b"payload")
        assert out == path
        assert path.read_bytes() == b"payload"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.bin"
        io_atomic.atomic_write_bytes(path, b"x")
        assert path.read_bytes() == b"x"

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "blob.bin"
        io_atomic.atomic_write_bytes(path, b"old")
        io_atomic.atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_no_temp_litter_after_success(self, tmp_path):
        io_atomic.atomic_write_bytes(tmp_path / "blob.bin", b"x")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]

    def test_failed_write_preserves_old_contents(self, tmp_path, monkeypatch):
        path = tmp_path / "blob.bin"
        io_atomic.atomic_write_bytes(path, b"old")

        def boom(fd):
            raise OSError("disk full")

        monkeypatch.setattr(io_atomic.os, "fsync", boom)
        with pytest.raises(OSError):
            io_atomic.atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"old"
        # ... and the temp file was cleaned up.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]

    def test_atomic_write_pickle_is_a_bare_pickle(self, tmp_path):
        # Byte-compatible with the historical engine-store format: readers
        # that pre-date the helper keep working.
        path = io_atomic.atomic_write_pickle(tmp_path / "p.pkl", {"a": 1})
        assert pickle.loads(path.read_bytes()) == {"a": 1}


class TestChecksummedEnvelope:
    def test_round_trip(self):
        blob = io_atomic.wrap_checksummed(b"body-bytes")
        assert io_atomic.unwrap_checksummed(blob) == b"body-bytes"

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "c.pkl"
        io_atomic.atomic_write_checksummed(path, {"k": [1, 2]})
        assert io_atomic.read_checksummed(path) == {"k": [1, 2]}

    def test_not_an_envelope(self):
        with pytest.raises(io_atomic.ChecksumError):
            io_atomic.unwrap_checksummed(b"just some bytes")

    def test_truncated_header(self):
        blob = io_atomic.wrap_checksummed(b"body")
        with pytest.raises(io_atomic.ChecksumError):
            io_atomic.unwrap_checksummed(blob[:10])

    def test_truncated_body(self):
        blob = io_atomic.wrap_checksummed(b"a longer body that gets cut")
        with pytest.raises(io_atomic.ChecksumError):
            io_atomic.unwrap_checksummed(blob[:-3])

    def test_single_flipped_byte_is_detected(self):
        blob = bytearray(io_atomic.wrap_checksummed(b"sensitive state"))
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(io_atomic.ChecksumError):
            io_atomic.unwrap_checksummed(bytes(blob))

    def test_checksum_error_is_a_value_error(self):
        # Callers that catch ValueError (the historical engine-store reader
        # idiom) keep catching envelope failures.
        assert issubclass(io_atomic.ChecksumError, ValueError)
