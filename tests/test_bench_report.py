"""Merge and degradation behaviour of the benchmark trajectory report."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import report  # noqa: E402  (benchmarks/ is not a package)


def _write(path: Path, history):
    path.write_text(json.dumps({"schema": 1, "history": history}))


def test_merges_multiple_files_into_one_table(tmp_path):
    nn = tmp_path / "BENCH_nn.json"
    serving = tmp_path / "BENCH_serving.json"
    _write(nn, [
        {"timestamp": "2026-07-01T10:00:00", "results": {"fig11": 14.0}},
        {"timestamp": "2026-07-02T10:00:00", "results": {"fig11": 11.5}},
    ])
    _write(serving, [
        {"timestamp": "2026-07-02T11:00:00", "results": {"burst_rps": 930.0}},
    ])
    labels, rows, missing = report.merge_histories([nn, serving])
    assert labels == ["2026-07-01T10:00", "2026-07-02T10:00",
                      "2026-07-02T11:00"]
    assert rows["fig11"] == [14.0, 11.5, None]
    assert rows["burst_rps"] == [None, None, 930.0]
    assert missing == []

    table = report.format_trajectory([nn, serving])
    assert "fig11" in table and "burst_rps" in table
    assert "11.500" in table and "930.000" in table


@pytest.mark.parametrize("content", [
    None,                                   # missing file
    "",                                     # blank file
    "not json",                             # corrupt
    json.dumps({"schema": 99, "history": [{}]}),   # wrong schema
    '{"schema": 1, "history": [',                  # truncated write
    json.dumps({"schema": 1, "history": []}),      # empty trajectory
])
def test_unusable_history_renders_no_data_yet_row(tmp_path, content):
    path = tmp_path / "BENCH_nn.json"
    if content is not None:
        path.write_text(content)
    assert report.load_history(path) is None
    table = report.format_trajectory([path])
    assert f"{path.name}: no data yet" in table


def test_mixed_usable_and_empty_sources(tmp_path):
    good = tmp_path / "BENCH_nn.json"
    empty = tmp_path / "BENCH_serving.json"
    _write(good, [{"timestamp": "2026-07-01T10:00:00",
                   "results": {"tab1": 13.0}}])
    empty.write_text("")
    table = report.format_trajectory([good, empty])
    assert "tab1" in table
    assert "BENCH_serving.json: no data yet" in table


def test_column_cap_keeps_most_recent_runs(tmp_path):
    path = tmp_path / "BENCH_nn.json"
    _write(path, [{"timestamp": f"2026-07-{day:02d}T00:00:00",
                   "results": {"fig11": float(day)}}
                  for day in range(1, 12)])
    labels, rows, _ = report.merge_histories([path])
    assert len(labels) == report.MAX_COLUMNS
    assert rows["fig11"][-1] == 11.0           # newest run survives the cap
    assert labels[0].startswith("2026-07-06")  # oldest five dropped


def test_entry_without_results_is_skipped(tmp_path):
    path = tmp_path / "BENCH_nn.json"
    _write(path, [
        {"timestamp": "2026-07-01T00:00:00"},               # no results key
        {"timestamp": "2026-07-02T00:00:00", "results": {}},  # empty results
        {"timestamp": "2026-07-03T00:00:00", "results": {"tab1": 9.0}},
    ])
    labels, rows, missing = report.merge_histories([path])
    assert len(labels) == 1
    assert rows["tab1"] == [9.0]
    assert missing == []
