"""Tests for the module system, layers (incl. switchable BN), optimizers and losses."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.layers import FULL_PRECISION_KEY


class TestModuleSystem:
    def test_parameters_discovered_recursively(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4                     # two weights + two biases
        assert all("." in name for name in names)

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.BatchNorm2d(2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        layer = nn.Linear(3, 2)
        out = layer(Tensor(np.ones((1, 3), dtype=np.float32)))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Linear(4, 4, rng=np.random.default_rng(1))
        b = nn.Linear(4, 4, rng=np.random.default_rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm2d(3)
        bn.running_mean[...] = 5.0
        state = bn.state_dict()
        assert any(key.startswith("buffer:") for key in state)
        bn2 = nn.BatchNorm2d(3)
        bn2.load_state_dict(state)
        assert np.allclose(bn2.running_mean, 5.0)

    def test_num_parameters(self):
        layer = nn.Linear(10, 5)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_sequential_indexing_and_iteration(self):
        seq = nn.Sequential(nn.ReLU(), nn.Flatten())
        assert len(seq) == 2
        assert isinstance(seq[0], nn.ReLU)
        assert len(list(iter(seq))) == 2

    def test_module_list_registration(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml[0].parameters())) == 2
        parent = nn.Module()
        parent.items = ml
        assert len(parent.parameters()) == 4

    def test_module_list_is_not_callable(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([])(Tensor(np.zeros(1)))

    def test_strict_load_rejects_missing_keys(self):
        layer = nn.Linear(4, 4)
        state = layer.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(ValueError, match="missing"):
            layer.load_state_dict(state, strict=True)

    def test_strict_load_rejects_unexpected_keys(self):
        layer = nn.Linear(4, 4)
        state = layer.state_dict()
        state["ghost"] = np.zeros(2, dtype=np.float32)
        with pytest.raises(ValueError, match="unexpected"):
            layer.load_state_dict(state, strict=True)

    def test_lenient_load_skips_mismatches(self):
        # The historical partial-load contract must survive the strict mode.
        layer = nn.Linear(4, 4)
        layer.load_state_dict({"ghost": np.zeros(2, dtype=np.float32)})

    def test_strict_load_bumps_every_parameter_version(self):
        layer = nn.Linear(4, 4)
        versions = [p.version for p in layer.parameters()]
        layer.load_state_dict(layer.state_dict(), strict=True)
        assert all(p.version == v + 1
                   for p, v in zip(layer.parameters(), versions))


class TestLayers:
    def test_conv_layer_output_shape(self):
        conv = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        out = conv(Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32)))
        assert out.shape == (2, 8, 8, 8)

    def test_linear_layer_output_shape(self):
        assert nn.Linear(7, 3)(Tensor(np.zeros((4, 7), dtype=np.float32))).shape == (4, 3)

    def test_batchnorm_layer_trains_stats(self):
        bn = nn.BatchNorm2d(4)
        x = Tensor(np.random.default_rng(0).normal(2, 1, (8, 4, 3, 3)).astype(np.float32))
        bn.train()
        bn(x)
        assert not np.allclose(bn.running_mean, 0)

    def test_pooling_and_flatten_layers(self):
        x = Tensor(np.zeros((1, 2, 8, 8), dtype=np.float32))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.AdaptiveAvgPool2d(1)(x).shape == (1, 2, 1, 1)
        assert nn.Flatten()(x).shape == (1, 128)
        assert nn.Identity()(x) is x

    def test_dropout_layer_respects_mode(self):
        drop = nn.Dropout(0.9, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100,), dtype=np.float32))
        drop.eval()
        assert np.allclose(drop(x).data, 1.0)
        drop.train()
        assert not np.allclose(drop(x).data, 1.0)


class TestSwitchableBatchNorm:
    def test_branch_per_precision_plus_full_precision(self):
        sbn = nn.SwitchableBatchNorm2d(4, precisions=[4, 8])
        assert set(sbn.available_keys()) == {FULL_PRECISION_KEY, 4, 8}

    def test_switch_to_unknown_key_raises(self):
        sbn = nn.SwitchableBatchNorm2d(4, precisions=[4, 8])
        with pytest.raises(KeyError):
            sbn.switch_to(16)

    def test_branches_keep_independent_statistics(self):
        sbn = nn.SwitchableBatchNorm2d(2, precisions=[4, 8])
        rng = np.random.default_rng(0)
        sbn.train()
        sbn.switch_to(4)
        sbn(Tensor(rng.normal(5.0, 1.0, (16, 2, 4, 4)).astype(np.float32)))
        sbn.switch_to(8)
        sbn(Tensor(rng.normal(-5.0, 1.0, (16, 2, 4, 4)).astype(np.float32)))
        mean4 = sbn._branches[4].running_mean.copy()
        mean8 = sbn._branches[8].running_mean.copy()
        assert mean4.mean() > 0 > mean8.mean()

    def test_forward_uses_active_branch(self):
        sbn = nn.SwitchableBatchNorm2d(2, precisions=[4])
        sbn.eval()
        sbn._branches[4].running_mean[...] = 10.0
        x = Tensor(np.full((1, 2, 2, 2), 10.0, dtype=np.float32))
        sbn.switch_to(4)
        assert np.allclose(sbn(x).data, 0.0, atol=1e-3)
        sbn.switch_to(FULL_PRECISION_KEY)
        assert not np.allclose(sbn(x).data, 0.0, atol=1e-3)

    def test_all_branch_parameters_registered(self):
        sbn = nn.SwitchableBatchNorm2d(3, precisions=[4, 8])
        # 3 branches (fp, 4, 8) x (weight + bias)
        assert len(sbn.parameters()) == 6


class TestOptimizers:
    def _quadratic_step(self, optimizer_cls, **kwargs):
        param = nn.Parameter(np.array([4.0], dtype=np.float32))
        opt = optimizer_cls([param], **kwargs)
        for _ in range(50):
            opt.zero_grad()
            loss = (Tensor(param.data, requires_grad=False) * 0)  # placeholder
            # minimise f(w) = w^2 manually: grad = 2w
            param.grad = 2 * param.data
            opt.step()
        return float(param.data[0])

    def test_sgd_minimises_quadratic(self):
        assert abs(self._quadratic_step(nn.SGD, lr=0.1)) < 1e-3

    def test_sgd_momentum_minimises_quadratic(self):
        # Heavy-ball momentum oscillates on a quadratic; it should still have
        # contracted the iterate well inside the starting point after 50 steps.
        assert abs(self._quadratic_step(nn.SGD, lr=0.05, momentum=0.9)) < 0.5

    def test_adam_minimises_quadratic(self):
        assert abs(self._quadratic_step(nn.Adam, lr=0.2)) < 0.2

    def test_sgd_weight_decay_shrinks_weights(self):
        param = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert param.data[0] < 1.0

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_step_skips_parameters_without_grad(self):
        param = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.SGD([param], lr=0.1)
        opt.step()                     # no grad -> no change, no crash
        assert param.data[0] == pytest.approx(1.0)


class TestOptimizerStateRoundTrip:
    """Checkpoint contract: export scratch state, import it into a fresh
    optimizer (a resumed process), and subsequent updates are bit-identical
    to the uninterrupted optimizer's."""

    GRADS = [np.array([1.0, -2.0], dtype=np.float32),
             np.array([0.5, 0.25], dtype=np.float32),
             np.array([-1.5, 3.0], dtype=np.float32)]

    def _run(self, opt, param, grads):
        for grad in grads:
            param.grad = grad.copy()
            opt.step()

    def _round_trip(self, make_opt):
        # Uninterrupted: 2 warm-up steps + 3 more.
        p_gold = nn.Parameter(np.array([4.0, -3.0], dtype=np.float32))
        gold = make_opt(p_gold)
        self._run(gold, p_gold, self.GRADS[:2])
        state = gold.state_dict()
        weights = p_gold.data.copy()
        self._run(gold, p_gold, self.GRADS)

        # Resumed: fresh parameter + optimizer, snapshot imported.
        p_res = nn.Parameter(weights.copy())
        res = make_opt(p_res)
        res.load_state_dict(state)
        self._run(res, p_res, self.GRADS)
        assert np.array_equal(p_gold.data, p_res.data)

    def test_sgd_momentum_round_trip_is_bit_identical(self):
        self._round_trip(lambda p: nn.SGD([p], lr=0.1, momentum=0.9,
                                          weight_decay=5e-4))

    def test_sgd_nesterov_round_trip_is_bit_identical(self):
        self._round_trip(lambda p: nn.SGD([p], lr=0.1, momentum=0.9,
                                          nesterov=True))

    def test_adam_round_trip_is_bit_identical(self):
        # The step counter t rides along, so bias correction resumes exactly.
        self._round_trip(lambda p: nn.Adam([p], lr=0.05))

    def test_state_is_keyed_by_parameter_index(self):
        param = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.SGD([param], lr=0.1, momentum=0.9)
        param.grad = np.array([2.0], dtype=np.float32)
        opt.step()
        state = opt.state_dict()["state"]["velocity"]
        assert list(state) == [0]          # index, not id()

    def test_snapshot_arrays_are_copies(self):
        param = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.SGD([param], lr=0.1, momentum=0.9)
        param.grad = np.array([2.0], dtype=np.float32)
        opt.step()
        state = opt.state_dict()
        before = state["state"]["velocity"][0].copy()
        param.grad = np.array([9.0], dtype=np.float32)
        opt.step()
        assert np.array_equal(state["state"]["velocity"][0], before)

    def test_import_rejects_out_of_range_index(self):
        param = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.SGD([param], lr=0.1, momentum=0.9)
        with pytest.raises(ValueError, match="parameter index"):
            opt.load_state_dict({"lr": 0.1, "state": {
                "velocity": {5: np.zeros(1, dtype=np.float32)}}})

    def test_load_restores_scheduler_mutated_lr(self):
        param = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.SGD([param], lr=0.1)
        opt.lr = 0.001                     # a scheduler decayed it
        state = opt.state_dict()
        fresh = nn.SGD([nn.Parameter(np.array([1.0], dtype=np.float32))],
                       lr=0.1)
        fresh.load_state_dict(state)
        assert fresh.lr == 0.001

    def test_scheduler_state_round_trip(self):
        opt = nn.SGD([nn.Parameter(np.zeros(1, dtype=np.float32))], lr=1.0)
        sched = nn.MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        for _ in range(3):
            sched.step()
        state = sched.state_dict()
        opt2 = nn.SGD([nn.Parameter(np.zeros(1, dtype=np.float32))], lr=1.0)
        sched2 = nn.MultiStepLR(opt2, milestones=[2, 4], gamma=0.5)
        sched2.load_state_dict(state)
        assert sched2.step() == sched.step()


class TestSchedulers:
    def _opt(self):
        return nn.SGD([nn.Parameter(np.zeros(1, dtype=np.float32))], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.01)

    def test_multistep_lr(self):
        opt = self._opt()
        sched = nn.MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        lrs = [sched.step() for _ in range(5)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[1] == pytest.approx(0.5)
        assert lrs[4] == pytest.approx(0.25)

    def test_cosine_lr_monotone_decrease(self):
        opt = self._opt()
        sched = nn.CosineAnnealingLR(opt, total_epochs=10)
        lrs = [sched.step() for _ in range(10)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] == pytest.approx(0.0, abs=1e-6)

    def test_cyclic_lr_rises_then_falls(self):
        opt = self._opt()
        opt.lr = 0.0
        sched = nn.CyclicLR(opt, max_lr=1.0, total_steps=10, pct_start=0.5)
        sched.base_lr = 0.0
        lrs = [sched.step() for _ in range(10)]
        assert max(lrs) == pytest.approx(1.0, abs=1e-6)
        assert lrs[-1] < max(lrs)


class TestLossWrappers:
    def test_cross_entropy_loss_callable(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = Tensor(np.zeros((2, 4), dtype=np.float32), requires_grad=True)
        loss = loss_fn(logits, np.array([1, 3]))
        assert loss.item() == pytest.approx(np.log(4), rel=1e-4)

    def test_mse_loss_callable(self):
        loss_fn = nn.MSELoss()
        pred = Tensor(np.array([1.0, 3.0], dtype=np.float32))
        assert loss_fn(pred, np.array([1.0, 1.0], dtype=np.float32)).item() == pytest.approx(2.0)
