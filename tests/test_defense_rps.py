"""Tests for the training loops (natural / adversarial) and the RPS algorithm."""

import numpy as np
import pytest

from repro.core import (
    RPSConfig,
    RPSInference,
    RPSTrainer,
    TransferabilityResult,
    natural_accuracy,
    robust_accuracy,
    rps_robust_accuracy,
    transferability_matrix,
)
from repro.core.tradeoff import TradeoffController
from repro.attacks import FGSM, PGD, eps_from_255
from repro.defense import (
    ADVERSARIAL_METHODS,
    AdversarialConfig,
    AdversarialTrainer,
    Trainer,
    TrainingConfig,
    evaluate_accuracy,
)
from repro.models import preact_resnet18
from repro.quantization import Precision, PrecisionSet

EPS = eps_from_255(16)


def small_model(dataset, precisions=None, seed=0):
    return preact_resnet18(num_classes=dataset.num_classes, width=8,
                           blocks_per_stage=(1, 1), precisions=precisions,
                           seed=seed)


class TestNaturalTrainer:
    def test_loss_decreases_and_accuracy_increases(self, tiny_dataset):
        model = small_model(tiny_dataset)
        trainer = Trainer(model, TrainingConfig(epochs=3, batch_size=48, lr=0.05))
        history = trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train)
        assert history.epochs_completed == 3
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.train_accuracy[-1] > history.train_accuracy[0]

    def test_trained_model_beats_chance(self, tiny_dataset):
        model = small_model(tiny_dataset)
        Trainer(model, TrainingConfig(epochs=3, batch_size=48, lr=0.05)).fit(
            tiny_dataset.x_train, tiny_dataset.y_train)
        acc = evaluate_accuracy(model, tiny_dataset.x_test, tiny_dataset.y_test)
        assert acc > 2.0 / tiny_dataset.num_classes

    def test_evaluate_accuracy_empty_input(self, tiny_dataset):
        model = small_model(tiny_dataset)
        assert evaluate_accuracy(model, tiny_dataset.x_test[:0],
                                 tiny_dataset.y_test[:0]) == 0.0

    def test_scheduler_applied_when_milestones_given(self, tiny_dataset):
        model = small_model(tiny_dataset)
        trainer = Trainer(model, TrainingConfig(epochs=2, batch_size=48, lr=0.1,
                                                lr_milestones=(1,), lr_gamma=0.1))
        trainer.fit(tiny_dataset.x_train[:96], tiny_dataset.y_train[:96])
        assert trainer.optimizer.lr == pytest.approx(0.01)


class TestAdversarialTrainer:
    def test_method_validation(self):
        with pytest.raises(ValueError):
            AdversarialConfig(method="trades")

    def test_all_methods_run_one_epoch(self, tiny_dataset):
        for method in ADVERSARIAL_METHODS:
            model = small_model(tiny_dataset)
            config = AdversarialConfig(epochs=1, batch_size=48, lr=0.05,
                                       method=method, epsilon=EPS,
                                       attack_steps=2, free_replays=2)
            trainer = AdversarialTrainer(model, config)
            history = trainer.fit(tiny_dataset.x_train[:96], tiny_dataset.y_train[:96])
            assert history.epochs_completed == 1
            assert np.isfinite(history.train_loss[0])

    def test_generated_examples_stay_in_ball(self, tiny_dataset):
        model = small_model(tiny_dataset)
        config = AdversarialConfig(epochs=1, method="pgd", epsilon=EPS,
                                   attack_steps=3)
        trainer = AdversarialTrainer(model, config)
        x = tiny_dataset.x_train[:16]
        y = tiny_dataset.y_train[:16]
        x_adv = trainer.generate_adversarial(x, y)
        assert np.max(np.abs(x_adv - x)) <= EPS + 1e-5
        assert x_adv.min() >= 0 and x_adv.max() <= 1

    def test_alpha_defaults_depend_on_method(self):
        assert AdversarialConfig(method="fgsm_rs", epsilon=EPS).alpha == pytest.approx(1.25 * EPS)
        assert AdversarialConfig(method="pgd", epsilon=EPS).alpha > 0

    def test_adversarial_training_improves_robustness(self, tiny_dataset):
        attack = PGD(EPS, steps=5)
        x_eval = tiny_dataset.x_test[:48]
        y_eval = tiny_dataset.y_test[:48]

        natural = small_model(tiny_dataset)
        Trainer(natural, TrainingConfig(epochs=2, batch_size=48, lr=0.05)).fit(
            tiny_dataset.x_train, tiny_dataset.y_train)
        robust_nat = robust_accuracy(natural, attack, x_eval, y_eval)

        adversarial = small_model(tiny_dataset)
        AdversarialTrainer(adversarial, AdversarialConfig(
            epochs=2, batch_size=48, lr=0.05, method="pgd", epsilon=EPS,
            attack_steps=3)).fit(tiny_dataset.x_train, tiny_dataset.y_train)
        robust_adv = robust_accuracy(adversarial, attack, x_eval, y_eval)
        assert robust_adv > robust_nat


class TestRPSTrainer:
    def test_requires_switchable_bn(self, tiny_dataset, precision_set):
        model = small_model(tiny_dataset, precisions=None)
        with pytest.raises(ValueError):
            RPSTrainer(model, RPSConfig(precision_set=precision_set))

    def test_requires_matching_branches(self, tiny_dataset):
        model = small_model(tiny_dataset, precisions=PrecisionSet([4]))
        with pytest.raises(ValueError):
            RPSTrainer(model, RPSConfig(precision_set=PrecisionSet([4, 8])))

    def test_precision_history_spans_the_set(self, tiny_dataset, precision_set):
        model = small_model(tiny_dataset, precisions=precision_set)
        config = RPSConfig(epochs=2, batch_size=48, lr=0.05, method="fgsm",
                           epsilon=EPS, precision_set=precision_set, seed=0)
        trainer = RPSTrainer(model, config)
        trainer.fit(tiny_dataset.x_train[:144], tiny_dataset.y_train[:144])
        used = {p.key for p in trainer.precision_history}
        assert used == set(precision_set.keys)

    def test_full_precision_fraction(self, tiny_dataset, precision_set):
        model = small_model(tiny_dataset, precisions=precision_set)
        config = RPSConfig(epochs=1, batch_size=48, lr=0.05, method="fgsm",
                           epsilon=EPS, precision_set=precision_set,
                           full_precision_fraction=1.0)
        trainer = RPSTrainer(model, config)
        trainer.fit(tiny_dataset.x_train[:96], tiny_dataset.y_train[:96])
        assert all(p.is_full_precision for p in trainer.precision_history)

    def test_trained_model_beats_chance_at_every_precision(self, trained_rps_model,
                                                           tiny_dataset,
                                                           precision_set):
        chance = 1.0 / tiny_dataset.num_classes
        for precision in precision_set:
            acc = natural_accuracy(trained_rps_model, tiny_dataset.x_test,
                                   tiny_dataset.y_test, precision)
            assert acc > 1.5 * chance


class TestRPSInference:
    def test_predictions_shape_and_range(self, trained_rps_model, tiny_dataset,
                                         precision_set):
        inference = RPSInference(trained_rps_model, precision_set, seed=0)
        preds = inference.predict(tiny_dataset.x_test[:32])
        assert preds.shape == (32,)
        assert preds.max() < tiny_dataset.num_classes

    def test_per_batch_mode(self, trained_rps_model, tiny_dataset, precision_set):
        inference = RPSInference(trained_rps_model, precision_set, seed=0)
        preds = inference.predict(tiny_dataset.x_test[:32], per_sample=False)
        assert preds.shape == (32,)

    def test_accuracy_above_chance(self, trained_rps_model, tiny_dataset,
                                   precision_set):
        inference = RPSInference(trained_rps_model, precision_set, seed=0)
        acc = inference.accuracy(tiny_dataset.x_test, tiny_dataset.y_test)
        assert acc > 1.5 / tiny_dataset.num_classes

    def test_restrict_reduces_expected_bitops(self, trained_rps_model, precision_set):
        inference = RPSInference(trained_rps_model, precision_set, seed=0)
        restricted = inference.restrict(4)
        assert restricted.expected_bit_operations() < inference.expected_bit_operations()
        assert set(restricted.precision_set.bit_widths) == {3, 4}

    def test_empty_input(self, trained_rps_model, precision_set):
        inference = RPSInference(trained_rps_model, precision_set)
        assert inference.accuracy(np.empty((0, 3, 8, 8), np.float32),
                                  np.empty(0, np.int64)) == 0.0


class TestEvaluationProtocols:
    def test_robust_accuracy_cross_precision(self, trained_rps_model, tiny_dataset):
        attack = FGSM(EPS)
        x = tiny_dataset.x_test[:32]
        y = tiny_dataset.y_test[:32]
        acc = robust_accuracy(trained_rps_model, attack, x, y,
                              attack_precision=3, inference_precision=6)
        assert 0.0 <= acc <= 1.0

    def test_transferability_matrix_shape_and_bounds(self, trained_rps_model,
                                                     tiny_dataset, precision_set):
        attack = FGSM(EPS)
        result = transferability_matrix(trained_rps_model, attack,
                                        tiny_dataset.x_test[:32],
                                        tiny_dataset.y_test[:32], precision_set)
        assert isinstance(result, TransferabilityResult)
        assert result.matrix.shape == (3, 3)
        assert np.all((result.matrix >= 0) & (result.matrix <= 1))
        as_dict = result.as_dict()
        assert as_dict["precisions"] == [3, 4, 6]

    def test_rps_robust_accuracy_bounds(self, trained_rps_model, tiny_dataset,
                                        precision_set):
        attack = FGSM(EPS)
        acc = rps_robust_accuracy(trained_rps_model, attack,
                                  tiny_dataset.x_test[:32],
                                  tiny_dataset.y_test[:32], precision_set)
        assert 0.0 <= acc <= 1.0


class TestTradeoffController:
    def test_operating_points_structure(self, trained_rps_model, precision_set):
        controller = TradeoffController(trained_rps_model, precision_set,
                                        attack=FGSM(EPS))
        points = controller.operating_points(caps=(None, 4))
        assert len(points) == 3                      # two RPS sets + static
        assert points[-1].is_static
        assert points[0].precision_set.bit_widths == [3, 4, 6]
        assert points[1].precision_set.bit_widths == [3, 4]

    def test_build_curve_scores_robustness(self, trained_rps_model, tiny_dataset,
                                           precision_set):
        controller = TradeoffController(trained_rps_model, precision_set,
                                        attack=FGSM(EPS))
        curve = controller.build_curve(tiny_dataset.x_test[:32],
                                       tiny_dataset.y_test[:32],
                                       caps=(None, 4))
        assert len(curve.points) == 3
        for point in curve.points:
            assert 0.0 <= point.robust_accuracy <= 1.0
            assert 0.0 <= point.natural_accuracy <= 1.0
        rows = curve.as_rows()
        assert len(rows) == 3 and "configuration" in rows[0]

    def test_requires_attack_for_robustness(self, trained_rps_model, precision_set,
                                            tiny_dataset):
        controller = TradeoffController(trained_rps_model, precision_set)
        points = controller.operating_points()
        with pytest.raises(ValueError):
            controller.score_robustness(points, tiny_dataset.x_test[:8],
                                        tiny_dataset.y_test[:8])
