"""Parity and cache semantics of compiled inference plans / sessions.

The contract under test (see ``repro/inference/plan.py``):

* ``fold_bn=False`` sessions replay the exact op sequence of the live
  ``set_model_precision`` + eval-forward path (fast backend) and must be
  **bit-identical** to it, on every registered model at every precision.
* ``fold_bn=True`` sessions reassociate the BN multiply into the conv
  weights; float32 results then differ by reduction order only.  At very low
  bit-widths (3-bit) a 1e-7 perturbation can flip a value across a
  quantisation-bin boundary, so the folded parity check runs at >= 4 bits,
  where the end-to-end delta stays small and decisions are stable.
* Plans are cached per (precision, fold flag) and invalidated by
  ``load_state_dict`` (parameter versions) and by BN-statistic changes
  (buffer digest).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.defense import evaluate_accuracy
from repro.inference import InferenceSession
from repro.models import available_models, build_model
from repro.nn import workspace as nn_workspace
from repro.nn.tensor import Tensor, no_grad
from repro.quantization import (
    DEFAULT_RPS_SET,
    FULL_PRECISION,
    Precision,
    PrecisionSet,
    get_model_precision,
    set_model_precision,
)

MODELS = available_models()
PS = PrecisionSet([3, 4, 6])
IMAGE = 16
BATCH = 6

#: End-to-end bound for BN-folded forwards at >= 4 bits.  Per-layer the
#: reassociation is ~1e-6 relative; the deepest model (ResNet-50, 53 folded
#: layers) compounds to ~1e-4 absolute on logit scales of O(10).
FOLD_ATOL = 5e-4


def _randomise_bn(model, rng):
    """Give running statistics non-trivial values so folding is exercised."""
    for name, buf in model.named_buffers():
        if "running_mean" in name:
            buf[...] = rng.normal(0.0, 0.3, buf.shape).astype(np.float32)
        elif "running_var" in name:
            buf[...] = rng.uniform(0.5, 2.0, buf.shape).astype(np.float32)


def _build(name, rng, precisions=PS):
    model = build_model(name, num_classes=10, precisions=precisions, scale=8,
                        seed=0)
    _randomise_bn(model, rng)
    return model


def _reference_logits(model, x, precision):
    """The pre-refactor path: mutate the live model, run an eval forward."""
    set_model_precision(model, precision)
    was_training = model.training
    model.eval()
    with no_grad():
        logits = model(Tensor(x)).data.copy()
    model.train(was_training)
    nn_workspace.end_step()
    return logits


@pytest.fixture(scope="module")
def probe():
    rng = np.random.default_rng(0)
    return rng.random((BATCH, 3, IMAGE, IMAGE)).astype(np.float32)


class TestExactParity:
    """fold_bn=False == live path, bitwise."""

    @pytest.mark.parametrize("name", MODELS)
    def test_bit_identical_across_precisions(self, name, probe):
        rng = np.random.default_rng(1)
        model = _build(name, rng)
        session = InferenceSession(model, fold_bn=False)
        for precision in list(PS) + [FULL_PRECISION]:
            reference = _reference_logits(model, probe, precision)
            compiled = session.forward(probe, precision)
            assert np.array_equal(reference, compiled), (
                f"{name} at {precision}: compiled no-fold plan diverged "
                f"from the live path by "
                f"{np.abs(reference - compiled).max():.3e}")

    @pytest.mark.parametrize("name", MODELS)
    def test_default_rps_set_bit_identical(self, name):
        """Acceptance sweep: every precision in DEFAULT_RPS_SET (4-16 bit)."""
        rng = np.random.default_rng(2)
        model = _build(name, rng, precisions=DEFAULT_RPS_SET)
        x = rng.random((2, 3, IMAGE, IMAGE)).astype(np.float32)
        session = InferenceSession(model, fold_bn=False)
        for precision in DEFAULT_RPS_SET:
            reference = _reference_logits(model, x, precision)
            compiled = session.forward(x, precision)
            assert np.array_equal(reference, compiled), (
                f"{name} at {precision} diverged")


class TestFoldedParity:
    """fold_bn=True == live path up to documented reduction-order noise."""

    @pytest.mark.parametrize("name", MODELS)
    def test_folded_close_and_decisions_stable(self, name, probe):
        rng = np.random.default_rng(3)
        model = _build(name, rng)
        session = InferenceSession(model, fold_bn=True)
        for precision in [Precision(4), Precision(6), FULL_PRECISION]:
            reference = _reference_logits(model, probe, precision)
            compiled = session.forward(probe, precision)
            if precision.is_full_precision:
                # No quantizer downstream of the fold: the delta is pure
                # reduction-order noise and stays tiny end to end.
                delta = np.abs(reference - compiled).max()
                assert delta <= FOLD_ATOL, (
                    f"{name} at {precision}: folded delta {delta:.2e} "
                    f"exceeds {FOLD_ATOL:.0e}")
            # At low bit-widths the ~1e-6 fold perturbation can move an
            # activation across a quantisation-bin boundary, which shows up
            # as an O(bin) logit delta — the stable contract (as in the PR 3
            # chaos-bounded parity suite) is the decision.
            assert (reference.argmax(1) == compiled.argmax(1)).all(), (
                f"{name} at {precision}: folded plan flipped a decision")

    def test_folding_actually_folds(self, probe):
        """Post-activation models must fold every conv-fed BN."""
        rng = np.random.default_rng(4)
        model = _build("resnet18", rng)
        session = InferenceSession(model, fold_bn=True)
        plan = session.plan_for(Precision(4), input_shape=probe.shape)
        assert plan.folded_bn_count == 20       # every BN in ResNet-18
        assert plan.fused_relu_count > 0
        # Pre-activation topology: bn1 precedes its conv (unfoldable), but
        # bn2 directly consumes conv1's output — exactly one fold per block.
        pre = _build("preact_resnet18", rng)
        pre_plan = InferenceSession(pre, fold_bn=True).plan_for(
            Precision(4), input_shape=probe.shape)
        assert pre_plan.folded_bn_count == 8    # one bn2 per PreAct block
        assert pre_plan.fused_relu_count > 0    # ReLU fuses into BN affines


class TestPlanCache:
    def test_plans_cached_per_precision(self, probe):
        rng = np.random.default_rng(5)
        model = _build("preact_resnet18", rng)
        session = InferenceSession(model, fold_bn=True)
        plan_a = session.plan_for(Precision(4), input_shape=probe.shape)
        plan_b = session.plan_for(Precision(4))
        assert plan_a is plan_b
        plan_c = session.plan_for(Precision(6))
        assert plan_c is not plan_a
        assert len(session.cached_plan_keys) == 2

    def test_warm_prebuilds_plans(self, probe):
        """The fleet's spawn-time warm-up: plans exist before any traffic."""
        rng = np.random.default_rng(50)
        model = _build("preact_resnet18", rng)
        session = InferenceSession(model)
        assert session.cached_plan_keys == []
        keys = session.warm([Precision(3), Precision(6)],
                            (1, 3, IMAGE, IMAGE))
        assert len(keys) == 2
        assert session.cached_plan_keys == keys
        # A warmed precision is a pure cache hit afterwards.
        plan = session.plan_for(Precision(3))
        assert plan is session.plan_for(Precision(3),
                                        input_shape=probe.shape)
        # ... and the warm trace serves other precisions too.
        session.plan_for(Precision(4))
        assert len(session.cached_plan_keys) == 3

    def test_trace_shared_across_precisions(self, probe):
        rng = np.random.default_rng(6)
        model = _build("preact_resnet18", rng)
        session = InferenceSession(model)
        session.plan_for(Precision(3), input_shape=probe.shape)
        trace = session._trace
        session.plan_for(Precision(6))
        assert session._trace is trace

    def test_load_state_dict_invalidates(self, probe):
        rng = np.random.default_rng(7)
        model = _build("preact_resnet18", rng)
        session = InferenceSession(model, fold_bn=False)
        before = session.forward(probe, Precision(4))
        stale_plan = session.plan_for(Precision(4))

        # Perturb the weights through the supported mutation path.
        state = model.state_dict()
        for key, value in state.items():
            if not key.startswith("buffer:"):
                state[key] = value + rng.normal(0, 0.05, value.shape).astype(
                    np.float32)
        model.load_state_dict(state)

        after = session.forward(probe, Precision(4))
        assert not np.array_equal(before, after)
        assert session.plan_for(Precision(4)) is not stale_plan
        # And the rebuilt plan matches a fresh reference of the new weights.
        reference = _reference_logits(model, probe, Precision(4))
        assert np.array_equal(reference, after)

    def test_checkpoint_restore_invalidates(self, probe):
        """Restoring a training checkpoint bumps parameter versions, so a
        session rebuilds its plans — even though the restored weights equal
        bytes the session has compiled before."""
        from repro import checkpoint as ckpt
        from repro.defense import Trainer, TrainingConfig

        rng = np.random.default_rng(9)
        model = _build("preact_resnet18", rng)
        trainer = Trainer(model, TrainingConfig(batch_size=8, lr=0.1, seed=0))
        session = InferenceSession(model, fold_bn=False)
        before = session.forward(probe, Precision(4))
        original_plan = session.plan_for(Precision(4))
        snap = ckpt.capture_training_state(trainer)

        x = rng.random((8, 3, IMAGE, IMAGE)).astype(np.float32)
        y = rng.integers(0, 10, size=8)
        trainer.train_batch(x, y)
        moved = session.forward(probe, Precision(4))
        assert not np.array_equal(before, moved)

        ckpt.restore_training_state(trainer, snap)
        restored = session.forward(probe, Precision(4))
        assert np.array_equal(restored, before)
        assert session.plan_for(Precision(4)) is not original_plan

    def test_bn_statistics_change_invalidates(self, probe):
        """Buffer contents are digested: BN drift alone rebuilds plans."""
        rng = np.random.default_rng(8)
        model = _build("resnet18", rng)
        session = InferenceSession(model, fold_bn=True)
        before = session.forward(probe, Precision(6))
        stale_plan = session.plan_for(Precision(6))
        _randomise_bn(model, np.random.default_rng(99))
        after = session.forward(probe, Precision(6))
        assert session.plan_for(Precision(6)) is not stale_plan
        assert not np.array_equal(before, after)


class TestSessionSemantics:
    def test_model_state_untouched(self, probe):
        rng = np.random.default_rng(9)
        model = _build("preact_resnet18", rng)
        set_model_precision(model, Precision(6))
        model.train()
        session = InferenceSession(model)
        session.predict(probe, Precision(3))
        assert model.training
        assert get_model_precision(model) == Precision(6)
        # No compiled kernel may leak into the live module path.
        for module in model.modules():
            assert "forward" not in module.__dict__

    def test_predict_assigned_matches_grouped_predict(self, probe):
        rng = np.random.default_rng(10)
        model = _build("preact_resnet18", rng)
        session = InferenceSession(model, fold_bn=False)
        draws = rng.integers(0, len(PS), len(probe))
        assignments = [PS[i] for i in draws]
        mixed = session.predict_assigned(probe, assignments)
        # Same per-precision grouping, one explicit predict per group
        # (activation-quantisation ranges are batch-global, so the grouping
        # itself is part of the semantics).
        for index, precision in enumerate(PS):
            selected = np.flatnonzero(draws == index)
            if selected.size == 0:
                continue
            grouped = session.predict(probe[selected], precision)
            assert np.array_equal(grouped, mixed[selected])

    def test_rps_inference_matches_legacy_loop(self, probe):
        """RPSInference draws + predictions reproduce the pre-session loop."""
        from repro.core import RPSInference

        rng = np.random.default_rng(11)
        model = _build("preact_resnet18", rng)
        x = rng.random((32, 3, IMAGE, IMAGE)).astype(np.float32)

        engine = RPSInference(model, PS, seed=42,
                              session=InferenceSession(model, fold_bn=False))
        got = engine.predict(x, per_sample=True)

        # The historical implementation, inline.
        legacy_rng = np.random.default_rng(42)
        assignments = np.array([legacy_rng.integers(0, len(PS))
                                for _ in range(len(x))])
        expected = np.empty(len(x), dtype=np.int64)
        model.eval()
        for index, precision in enumerate(PS):
            selected = np.flatnonzero(assignments == index)
            if selected.size == 0:
                continue
            set_model_precision(model, precision)
            with no_grad():
                logits = model(Tensor(x[selected]))
            expected[selected] = logits.data.argmax(axis=1)
            del logits
            nn_workspace.end_step()
        assert np.array_equal(expected, got)

    def test_evaluate_accuracy_session_route(self, probe):
        rng = np.random.default_rng(12)
        model = _build("preact_resnet18", rng)
        y = rng.integers(0, 10, len(probe))
        set_model_precision(model, Precision(4))
        session = InferenceSession(model, fold_bn=False)
        assert (evaluate_accuracy(model, probe, y, session=session)
                == evaluate_accuracy(model, probe, y))

    def test_empty_input(self):
        rng = np.random.default_rng(13)
        model = _build("preact_resnet18", rng)
        session = InferenceSession(model)
        empty = np.empty((0, 3, IMAGE, IMAGE), dtype=np.float32)
        assert session.predict_assigned(empty, []).shape == (0,)
        assert session.accuracy(empty, np.empty(0, np.int64)) == 0.0

    def test_shared_module_pinned_to_plan_precision(self, probe):
        """A conv instance invoked twice per forward cannot be compiled —
        the plan must still pin it to the plan's precision during execute
        so a stale ``set_model_precision`` never leaks into the run."""
        from repro.nn.module import Module
        from repro.quantization import QuantConv2d, QuantLinear

        class SharedConvNet(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.conv = QuantConv2d(3, 3, kernel_size=3, padding=1,
                                        bias=False, rng=rng)
                self.fc = QuantLinear(3 * IMAGE * IMAGE, 10, rng=rng)

            def forward(self, x):
                out = self.conv(self.conv(x))    # shared instance, called 2x
                return self.fc(out.flatten(1))

        model = SharedConvNet()
        session = InferenceSession(model, fold_bn=False)
        reference = _reference_logits(model, probe, Precision(4))
        # Leave the live module at a *different* precision, then execute.
        set_model_precision(model, Precision(8))
        compiled = session.forward(probe, Precision(4))
        assert np.array_equal(reference, compiled)
        assert get_model_precision(model) == Precision(8)  # restored


class TestNativeBackendPlans:
    """Compiled plans over the native direct-conv kernels.

    ``fold_bn=False`` plans executed under the native backend must stay
    decision-identical to the live ``set_model_precision`` eval path (which
    runs on the fast backend) across the full 4-16-bit RPS set: the direct
    kernels reorder float32 dot products at the ULP level, so bitwise
    equality is not the contract — argmax agreement is.
    """

    native_only = pytest.mark.skipif(
        not __import__("repro.nn.native", fromlist=["available"]).available(),
        reason="native kernels unavailable (no C compiler)")

    @native_only
    @pytest.mark.parametrize("name", MODELS)
    def test_native_plans_decision_identical_on_rps_set(self, name):
        from repro.nn import functional as F

        rng = np.random.default_rng(4)
        model = _build(name, rng, precisions=DEFAULT_RPS_SET)
        x = rng.random((4, 3, IMAGE, IMAGE)).astype(np.float32)
        session = InferenceSession(model, fold_bn=False)
        for precision in list(DEFAULT_RPS_SET) + [FULL_PRECISION]:
            with F.use_backend("fast"):
                reference = _reference_logits(model, x, precision)
            with F.use_backend("native"):
                compiled = session.forward(x, precision)
            assert np.array_equal(reference.argmax(1), compiled.argmax(1)), (
                f"{name} at {precision}: native no-fold plan flipped a "
                f"decision vs the live path")
            # No numeric bound: ULP reorder under quantisation can move an
            # activation across a bin, which legitimately shifts logits by
            # O(bin) on deep models — the decision is the contract (same
            # rationale as the folded-parity suite above).

    @native_only
    def test_plans_keyed_per_backend(self):
        from repro.nn import functional as F

        rng = np.random.default_rng(5)
        model = _build("preact_resnet18", rng)
        x = rng.random((2, 3, IMAGE, IMAGE)).astype(np.float32)
        session = InferenceSession(model, fold_bn=False)
        with F.use_backend("fast"):
            session.forward(x, 8)
        with F.use_backend("native"):
            session.forward(x, 8)
        assert len(session.cached_plan_keys) == 2   # one plan per backend
