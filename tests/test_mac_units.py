"""Tests for the MAC-unit cost models, calibrated against the paper's claims."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.mac import (
    AreaBreakdown,
    FixedPointMAC,
    SpatialBitFusionMAC,
    SpatialTemporalMAC,
    TemporalBitSerialMAC,
)
from repro.quantization import FULL_PRECISION, Precision

ALL_UNITS = [TemporalBitSerialMAC(), SpatialBitFusionMAC(), SpatialTemporalMAC(),
             FixedPointMAC()]


class TestFig4CycleCounts:
    """Fig. 4: an 8-bit x 8-bit MAC takes 8 / 1 / 4 cycles."""

    def test_temporal_eight_cycles(self):
        assert TemporalBitSerialMAC().cycles_per_mac(8) == pytest.approx(8)

    def test_spatial_one_cycle(self):
        assert SpatialBitFusionMAC().cycles_per_mac(8) == pytest.approx(1)

    def test_spatial_temporal_four_cycles(self):
        assert SpatialTemporalMAC().cycles_per_mac(8) == pytest.approx(4)


class TestFig3AreaBreakdown:
    """Fig. 3: shift-add dominates temporal/spatial designs, not ours."""

    def test_temporal_fractions(self):
        f = TemporalBitSerialMAC().area_breakdown.fractions()
        assert f["shift_add"] == pytest.approx(0.609, abs=0.02)
        assert f["multiplier"] == pytest.approx(0.094, abs=0.02)

    def test_spatial_fractions(self):
        f = SpatialBitFusionMAC().area_breakdown.fractions()
        assert f["shift_add"] == pytest.approx(0.67, abs=0.02)
        assert f["register"] == pytest.approx(0.065, abs=0.02)

    def test_ours_fractions(self):
        f = SpatialTemporalMAC().area_breakdown.fractions()
        assert f["shift_add"] == pytest.approx(0.397, abs=0.02)
        assert f["multiplier"] == pytest.approx(0.43, abs=0.02)

    def test_ours_shift_add_share_is_smallest(self):
        shares = {unit.name: unit.area_breakdown.fractions()["shift_add"]
                  for unit in (TemporalBitSerialMAC(), SpatialBitFusionMAC(),
                               SpatialTemporalMAC())}
        assert shares["spatial-temporal"] < shares["temporal-bit-serial"]
        assert shares["spatial-temporal"] < shares["spatial-bit-fusion"]

    def test_breakdown_totals(self):
        breakdown = AreaBreakdown(multiplier=1, shift_add=2, register=1)
        assert breakdown.total == 4
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)


class TestSec323SynthesisRatios:
    """Sec. 3.2.3: 2.3x throughput/area and 4.88x energy-eff/op over Bit Fusion."""

    def test_throughput_per_area_ratio(self):
        ours = SpatialTemporalMAC()
        bitfusion = SpatialBitFusionMAC()
        ratio = ours.throughput_per_area(8) / bitfusion.throughput_per_area(8)
        assert ratio == pytest.approx(2.3, rel=0.05)

    def test_energy_efficiency_ratio(self):
        ours = SpatialTemporalMAC()
        bitfusion = SpatialBitFusionMAC()
        ratio = bitfusion.energy_per_mac(8) / ours.energy_per_mac(8)
        assert ratio == pytest.approx(4.88, rel=0.05)


class TestPrecisionScalingShape:
    """Sec. 3.1.1 / Fig. 2: who wins where along the precision axis."""

    @pytest.mark.parametrize("bits", [2, 4])
    def test_bitfusion_beats_stripes_below_8bit(self, bits):
        assert (SpatialBitFusionMAC().throughput_per_area(bits)
                > TemporalBitSerialMAC().throughput_per_area(bits))

    def test_stripes_beats_bitfusion_at_16bit(self):
        assert (TemporalBitSerialMAC().throughput_per_area(16)
                > SpatialBitFusionMAC().throughput_per_area(16))

    @pytest.mark.parametrize("bits", [2, 3, 4, 5, 6, 7, 8, 12, 16])
    def test_ours_beats_both_baselines_everywhere(self, bits):
        ours = SpatialTemporalMAC().throughput_per_area(bits)
        assert ours > SpatialBitFusionMAC().throughput_per_area(bits)
        assert ours > TemporalBitSerialMAC().throughput_per_area(bits)

    def test_stripes_throughput_scales_inversely_with_bits(self):
        unit = TemporalBitSerialMAC()
        assert unit.macs_per_cycle(4) == pytest.approx(2 * unit.macs_per_cycle(8))

    def test_bitfusion_unsupported_precisions_round_up(self):
        unit = SpatialBitFusionMAC()
        assert unit.macs_per_cycle(5) == unit.macs_per_cycle(8)
        assert unit.macs_per_cycle(3) == unit.macs_per_cycle(4)

    def test_ours_supports_intermediate_precisions_natively(self):
        unit = SpatialTemporalMAC()
        assert unit.macs_per_cycle(6) > unit.macs_per_cycle(8)
        assert unit.macs_per_cycle(3) > unit.macs_per_cycle(4)

    def test_ours_above_8bit_uses_temporal_reexecution(self):
        unit = SpatialTemporalMAC()
        assert unit.cycles_per_mac(12) == pytest.approx(4 * unit.cycles_for_bits(6))
        assert unit.cycles_per_mac(16) == pytest.approx(16)


class TestMonotonicityProperties:
    @given(st.integers(1, 15))
    @settings(max_examples=30, deadline=None)
    def test_throughput_never_increases_with_precision(self, bits):
        for unit in (TemporalBitSerialMAC(), SpatialBitFusionMAC(),
                     SpatialTemporalMAC()):
            assert (unit.macs_per_cycle(bits)
                    >= unit.macs_per_cycle(bits + 1) - 1e-12)

    @given(st.integers(1, 15))
    @settings(max_examples=30, deadline=None)
    def test_energy_never_decreases_with_precision(self, bits):
        for unit in (TemporalBitSerialMAC(), SpatialBitFusionMAC(),
                     SpatialTemporalMAC()):
            assert unit.energy_per_mac(bits + 1) >= unit.energy_per_mac(bits) - 1e-9

    @given(st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_costs_are_positive(self, bits):
        for unit in ALL_UNITS:
            assert unit.macs_per_cycle(bits) > 0
            assert unit.energy_per_mac(bits) > 0
            assert unit.area > 0


class TestFixedPointMAC:
    def test_precision_oblivious(self):
        unit = FixedPointMAC()
        assert unit.macs_per_cycle(4) == unit.macs_per_cycle(16) == 1.0
        assert unit.energy_per_mac(4) == unit.energy_per_mac(16)


class TestPrecisionHandling:
    def test_accepts_precision_objects(self):
        unit = SpatialTemporalMAC()
        assert unit.macs_per_cycle(Precision(8)) == unit.macs_per_cycle(8)

    def test_rejects_full_precision(self):
        with pytest.raises(ValueError):
            SpatialTemporalMAC().macs_per_cycle(FULL_PRECISION)

    def test_asymmetric_precision_uses_max(self):
        unit = SpatialTemporalMAC()
        assert unit.macs_per_cycle(Precision(8, 4)) == unit.macs_per_cycle(8)
