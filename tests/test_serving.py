"""Behavioural tests of the async micro-batching RPS server.

Covered contracts:

* **Coalescing correctness** — a concurrent burst of single-input requests
  returns exactly the labels the underlying session produces for the same
  (submission-order deterministic) precision assignment, while the
  dispatcher actually forms multi-request windows.
* **Precision-draw determinism** — a seeded server draws the same precision
  sequence for the same submission order, matching the raw
  ``PrecisionSet.sample`` stream.
* **Hot swap** — swapping the precision set under live traffic affects only
  subsequent submissions.
* **Scheduling** — ``plan_precision_schedule`` picks the candidate the
  accelerator metrics favour, honouring an FPS floor.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.accelerator import TwoInOneAccelerator, network_layers
from repro.inference import InferenceSession
from repro.models import preact_resnet18
from repro.quantization import PrecisionSet
from repro.serving import (DeadlineExceeded, RejectedError, RPSServer,
                           ServingConfig, plan_precision_schedule)

PS = PrecisionSet([3, 4, 6])
IMAGE = 16


@pytest.fixture(scope="module")
def model():
    return preact_resnet18(num_classes=10, width=8, blocks_per_stage=(1, 1),
                           precisions=PS, seed=0)


@pytest.fixture(scope="module")
def requests_x():
    rng = np.random.default_rng(0)
    return [rng.random((3, IMAGE, IMAGE)).astype(np.float32)
            for _ in range(48)]


def drain(coro):
    return asyncio.run(coro)


class TestMicroBatching:
    def test_coalesced_burst_matches_session(self, model, requests_x):
        seed = 123
        windows = []

        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=16, max_delay_ms=20,
                                             seed=seed))
            original = server._run_window

            async def recording(window):
                windows.append(list(window))
                await original(window)

            server._run_window = recording
            async with server:
                labels = await server.submit_many(requests_x)
            return labels, server.stats()

        labels, stats = drain(serve())
        assert stats["completed"] == len(requests_x)
        assert len(labels) == len(requests_x)
        assert stats["mean_batch_size"] > 1.0, "dispatcher never coalesced"

        # The draws are deterministic in submission order ...
        draw_rng = np.random.default_rng(seed)
        expected_draws = [PS.sample(draw_rng).key for _ in requests_x]
        served_draws = [r.precision.key
                        for w in windows for r in w]  # dispatch order
        assert sorted(served_draws) == sorted(expected_draws)

        # ... and every dispatched window, replayed through a fresh session
        # with exactly the grouping the server formed, yields exactly the
        # labels the futures resolved to.
        session = InferenceSession(model)
        for window in windows:
            groups = {}
            for request in window:
                groups.setdefault(request.precision.key,
                                  (request.precision, []))[1].append(request)
            for precision, members in groups.values():
                expected = session.predict(np.stack([r.x for r in members]),
                                           precision)
                got = [r.future.result() for r in members]
                assert np.array_equal(expected, np.asarray(got))

    def test_single_window_burst_is_exact(self, model, requests_x):
        """One dispatch window == one predict_assigned call, exactly."""
        seed = 7
        burst = requests_x[:16]

        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=len(burst),
                                             max_delay_ms=200, seed=seed))
            async with server:
                return await server.submit_many(burst)

        labels = drain(serve())
        draw_rng = np.random.default_rng(seed)
        assignment = [PS.sample(draw_rng) for _ in burst]
        session = InferenceSession(model)
        expected = session.predict_assigned(np.stack(burst), assignment)
        assert np.array_equal(np.asarray(labels), expected)

    def test_stop_drains_queue(self, model, requests_x):
        async def serve():
            server = RPSServer(model, PS, ServingConfig(max_batch=8, seed=0))
            await server.start()
            futures = [asyncio.create_task(server.submit(x))
                       for x in requests_x[:12]]
            await asyncio.sleep(0)          # let submissions enqueue
            await server.stop()
            return await asyncio.gather(*futures)

        labels = drain(serve())
        assert len(labels) == 12

    def test_close_drains_every_pending_request(self, model, requests_x):
        """Shutdown drain: every request accepted before ``close()`` must
        complete — none dropped from the queue — and the stats must stay
        consistent with the completed count.

        The window is kept tiny (max_batch=4, max_delay 0.5 ms) so the
        close sentinel lands while most of the burst is still queued,
        exercising the drain across many dispatch windows.
        """
        burst = requests_x[:48]

        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=4, max_delay_ms=0.5,
                                             seed=3))
            await server.start()
            futures = [asyncio.create_task(server.submit(x)) for x in burst]
            await asyncio.sleep(0)      # submissions enqueue, none served yet
            await server.close()
            labels = await asyncio.gather(*futures)
            return labels, server.stats()

        labels, stats = drain(serve())
        assert len(labels) == len(burst)
        assert all(isinstance(label, int) for label in labels)
        # Stats consistency: every accepted request is accounted for once.
        assert stats["completed"] == len(burst)
        assert sum(stats["precision_counts"].values()) == len(burst)
        assert stats["mean_batch_size"] > 0
        assert stats["latency_p50_ms"] is not None
        # The drained windows drew from the same seeded stream: the
        # per-precision request counts match the expected draw histogram.
        # (Label-level equality needs matching window composition — the
        # activation-quantiser range is batch-global — and is covered by
        # the single-window test above.)
        draw_rng = np.random.default_rng(3)
        expected_counts: dict = {}
        for _ in burst:
            key = PS.sample(draw_rng).key
            expected_counts[key] = expected_counts.get(key, 0) + 1
        assert stats["precision_counts"] == dict(
            sorted(expected_counts.items(), key=lambda kv: str(kv[0])))

    def test_close_is_idempotent_and_rejects_late_submissions(
            self, model, requests_x):
        async def serve():
            server = RPSServer(model, PS, ServingConfig(seed=0))
            await server.start()
            label = await server.submit(requests_x[0])
            await server.close()
            await server.close()        # second close: clean no-op
            with pytest.raises(RuntimeError):
                await server.submit(requests_x[1])
            return label, server.stats()

        label, stats = drain(serve())
        assert isinstance(label, int)
        assert stats["completed"] == 1

    def test_malformed_request_fails_only_its_group(self, model, requests_x):
        """A bad input shape must reject its own future(s), not kill the
        dispatcher and strand every later request."""
        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=4, max_delay_ms=5,
                                             seed=0))
            async with server:
                bad = asyncio.create_task(
                    server.submit(np.zeros((1, 4, 4), np.float32)))
                with pytest.raises(Exception):
                    await bad
                # The server must still serve well-formed traffic.
                return await server.submit_many(requests_x[:6])

        labels = drain(serve())
        assert len(labels) == 6

    def test_submit_when_stopped_raises(self, model, requests_x):
        async def attempt():
            server = RPSServer(model, PS)
            await server.submit(requests_x[0])

        with pytest.raises(RuntimeError):
            drain(attempt())


class TestErrorStats:
    """Failure accounting: a session exception reaches the caller's future,
    is counted under ``failed``, and never pollutes the success metrics."""

    def test_session_exception_reaches_future_and_failed_counter(
            self, model, requests_x):
        bad = np.zeros((1, 4, 4), np.float32)    # wrong channel count

        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=4, max_delay_ms=5,
                                             seed=0))
            async with server:
                failures = [asyncio.create_task(server.submit(bad))
                            for _ in range(3)]
                for future in failures:
                    with pytest.raises(Exception):
                        await future
                labels = await server.submit_many(requests_x[:6])
            return labels, server.stats()

        labels, stats = drain(serve())
        assert len(labels) == 6
        assert stats["failed"] == 3
        assert stats["completed"] == 6

    def test_latency_and_counts_exclude_failures(self, model, requests_x):
        bad = np.zeros((1, 4, 4), np.float32)

        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=4, max_delay_ms=5,
                                             seed=1))
            async with server:
                with pytest.raises(Exception):
                    await server.submit(bad)
                only_failures = server.stats()
                await server.submit_many(requests_x[:4])
            return only_failures, server.stats()

        only_failures, final = drain(serve())
        # With zero successes the latency percentiles stay undefined
        # instead of reporting the failed request's timing.
        assert only_failures["failed"] == 1
        assert only_failures["completed"] == 0
        assert only_failures["latency_p50_ms"] is None
        assert only_failures["latency_p99_ms"] is None
        assert only_failures["throughput_rps"] == 0.0
        assert sum(only_failures["precision_counts"].values()) == 0
        # Successes then populate the window; the failure stays excluded.
        assert final["completed"] == 4
        assert final["failed"] == 1
        assert sum(final["precision_counts"].values()) == 4
        assert final["latency_p50_ms"] is not None

    def test_healthy_server_reports_zero_failed(self, model, requests_x):
        async def serve():
            server = RPSServer(model, PS, ServingConfig(seed=0))
            async with server:
                await server.submit_many(requests_x[:4])
            return server.stats()

        stats = drain(serve())
        assert stats["failed"] == 0
        assert stats["completed"] == 4


class TestPrecisionDraws:
    def test_seeded_draw_sequence_is_deterministic(self, model):
        server_a = RPSServer(model, PS, ServingConfig(seed=99))
        server_b = RPSServer(model, PS, ServingConfig(seed=99))
        draws_a = [server_a.draw_precision().key for _ in range(32)]
        draws_b = [server_b.draw_precision().key for _ in range(32)]
        assert draws_a == draws_b
        reference_rng = np.random.default_rng(99)
        expected = [PS.sample(reference_rng).key for _ in range(32)]
        assert draws_a == expected

    def test_hot_swap_affects_only_later_requests(self, model, requests_x):
        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=8, max_delay_ms=5,
                                             seed=5))
            async with server:
                await server.submit_many(requests_x[:16])
                counts_before = dict(server.stats()["precision_counts"])
                server.swap_precision_set(PS.restrict(4))
                await server.submit_many(requests_x[16:32])
                counts_after = server.stats()["precision_counts"]
            return counts_before, counts_after, server

        before, after, server = drain(serve())
        assert set(before) <= {3, 4, 6}
        # Post-swap requests draw only 3/4-bit: the 6-bit counter froze.
        assert after.get(6, 0) == before.get(6, 0)
        assert sum(after.values()) == sum(before.values()) + 16
        assert server.stats()["active_precisions"] == [3, 4]


class TestScheduling:
    @pytest.fixture(scope="class")
    def accelerator_and_layers(self):
        return TwoInOneAccelerator(), network_layers("resnet18", "cifar10")[:3]

    def test_energy_objective_prefers_restricted_set(self,
                                                     accelerator_and_layers):
        accelerator, layers = accelerator_and_layers
        chosen, candidates = plan_precision_schedule(
            accelerator, layers, PS, caps=(None, 4), objective="energy")
        assert chosen.cap == 4
        assert chosen.precision_set.bit_widths == [3, 4]
        by_cap = {c.cap: c for c in candidates}
        assert by_cap[4].average_energy <= by_cap[None].average_energy
        assert by_cap[4].average_fps >= by_cap[None].average_fps

    def test_fps_floor_falls_back_to_fastest(self, accelerator_and_layers):
        accelerator, layers = accelerator_and_layers
        chosen, candidates = plan_precision_schedule(
            accelerator, layers, PS, caps=(None, 4), objective="robustness",
            min_fps=float("inf"))
        fastest = max(candidates, key=lambda c: c.average_fps)
        assert chosen.cap == fastest.cap

    def test_robustness_objective_keeps_widest_feasible(self,
                                                        accelerator_and_layers):
        accelerator, layers = accelerator_and_layers
        chosen, _ = plan_precision_schedule(
            accelerator, layers, PS, caps=(None, 4), objective="robustness",
            min_fps=0.0)
        assert chosen.cap is None
        assert len(chosen.precision_set) == len(PS)

    def test_server_applies_schedule(self, model, accelerator_and_layers):
        accelerator, layers = accelerator_and_layers
        server = RPSServer(model, PS, ServingConfig(seed=0))
        chosen, candidates = server.apply_precision_schedule(
            accelerator, layers, caps=(None, 4), objective="energy")
        assert server.precision_set is chosen.precision_set
        assert len(candidates) == 2


class TestLifecycleInProcess:
    """Deadline, shedding and eager-warm semantics of the single-process
    dispatcher (the fleet-mode versions live in tests/test_lifecycle.py)."""

    def test_expired_requests_raise_deadline_exceeded(self, model,
                                                      requests_x):
        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=8, max_delay_ms=20,
                                             seed=7))
            async with server:
                results = await asyncio.gather(
                    *(server.submit(x, deadline_ms=0.001)
                      for x in requests_x[:8]),
                    return_exceptions=True)
            return results, server.stats()

        results, stats = drain(serve())
        assert all(isinstance(r, DeadlineExceeded) for r in results)
        assert stats["deadline_expired"] == 8
        assert stats["completed"] == 0
        assert stats["failed"] == 0, "expiries must not count as failures"

    def test_burst_past_queue_limit_sheds(self, model, requests_x):
        async def serve():
            server = RPSServer(model, PS,
                               ServingConfig(max_batch=4, max_delay_ms=0,
                                             seed=7, queue_limit=2))
            async with server:
                results = await asyncio.gather(
                    *(server.submit(x) for x in requests_x[:16]),
                    return_exceptions=True)
            return results, server.stats()

        results, stats = drain(serve())
        labels = [r for r in results if isinstance(r, int)]
        shed = [r for r in results if isinstance(r, RejectedError)]
        assert len(labels) + len(shed) == 16, results
        assert shed, "16-deep burst against queue_limit=2 never shed"
        assert stats["shed"] == len(shed)
        assert stats["completed"] == len(labels)
        # Shed requests consume no draw: the accepted histogram is the
        # seeded stream's first len(labels) draws.
        draw_rng = np.random.default_rng(7)
        expected: dict = {}
        for _ in labels:
            key = PS.sample(draw_rng).key
            expected[key] = expected.get(key, 0) + 1
        assert stats["precision_counts"] == \
            dict(sorted(expected.items(), key=lambda kv: str(kv[0])))

    def test_swap_eagerly_warms_new_precision_plans(self, model, requests_x):
        """After traffic teaches the server its input shape, a precision-set
        swap pre-compiles the genuinely new plans on the worker thread — the
        first post-swap request must not pay the plan build."""
        async def serve():
            server = RPSServer(model, PS.restrict(4),
                               ServingConfig(max_batch=4, max_delay_ms=0,
                                             seed=7))
            async with server:
                await server.submit_many(requests_x[:4])
                warm_before = list(server.session.cached_plan_keys)
                server.swap_precision_set(PS)
                deadline = asyncio.get_running_loop().time() + 30.0
                while not any(key[0] == 6
                              for key in server.session.cached_plan_keys):
                    assert asyncio.get_running_loop().time() < deadline, \
                        "swap never pre-warmed the 6-bit plan"
                    await asyncio.sleep(0.02)
                warm_after = list(server.session.cached_plan_keys)
            return warm_before, warm_after

        warm_before, warm_after = drain(serve())
        assert not any(key[0] == 6 for key in warm_before)
        assert any(key[0] == 6 for key in warm_after)
