"""Build/load machinery and dispatch policy of the native backend.

Covers the pieces that are independent of kernel numerics (those live in
``test_nn_parity.py``): the lazy compile-and-cache loader, the clean
single-warning degradation to ``fast`` when no compiler is present, the
lane-padding weight repack, and the dispatch rules that keep 1x1 / wide /
exotically-padded convolutions on the fast path.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn import native
from repro.nn.functional import _native_applicable
from repro.nn.native import build as native_build

NATIVE_AVAILABLE = native.available()
requires_native = pytest.mark.skipif(
    not NATIVE_AVAILABLE, reason="native kernels unavailable (no C compiler)")


@pytest.fixture
def restored_native_state(monkeypatch):
    """Reset the memoised load state after a test poked at it.

    The reload must happen with the compiler mask lifted: this fixture
    tears down *before* the test's own monkeypatch undo, so the masking
    variables are cleared here explicitly first.
    """
    yield
    monkeypatch.delenv("CC", raising=False)
    monkeypatch.delenv("REPRO_NN_NATIVE_CACHE_DIR", raising=False)
    native.reset()
    native.ensure_loaded()


# ---------------------------------------------------------------------------
# Loader and cache
# ---------------------------------------------------------------------------

class TestLoader:
    @requires_native
    def test_build_is_cached_on_disk(self):
        path = native_build.build()
        assert path.exists()
        assert path == native_build.build()      # second call: cache hit

    @requires_native
    def test_cache_key_tracks_flags(self):
        default = native_build.library_path()
        portable = native_build.library_path(["-O3", "-funroll-loops"])
        assert default != portable

    def test_compiler_command_prefers_cc_env(self, monkeypatch):
        monkeypatch.setenv("CC", "/custom/compiler --sysroot=/x")
        assert native_build.compiler_command() == ["/custom/compiler",
                                                  "--sysroot=/x"]

    def test_no_compiler_raises_build_error(self, monkeypatch, tmp_path):
        # $CC is trusted as-is (no PATH fallback), and an empty cache dir
        # prevents a previously-compiled library from short-circuiting the
        # build — together they model a machine without a toolchain.
        monkeypatch.setenv("CC", str(tmp_path / "missing-cc"))
        monkeypatch.setenv("REPRO_NN_NATIVE_CACHE_DIR", str(tmp_path))
        with pytest.raises(native_build.NativeBuildError):
            native_build.build()


# ---------------------------------------------------------------------------
# Sanitizer build mode
# ---------------------------------------------------------------------------

class TestSanitizerMode:
    def test_production_build_has_no_sanitizer_flags(self, monkeypatch):
        monkeypatch.delenv("REPRO_NN_NATIVE_SANITIZE", raising=False)
        assert native_build.sanitize_flags() == []
        assert native_build.flag_sets() == [list(f)
                                            for f in native_build._FLAG_SETS]

    def test_sanitize_flags_cover_each_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_NATIVE_SANITIZE", "address,undefined")
        flags = native_build.sanitize_flags()
        assert "-fsanitize=address" in flags
        assert "-fsanitize=undefined" in flags
        # UBSan findings must be fatal, and stacks must be symbolisable.
        assert "-fno-sanitize-recover=undefined" in flags
        assert "-g" in flags and "-fno-omit-frame-pointer" in flags

    def test_sanitized_builds_get_their_own_cache_slot(self, monkeypatch):
        monkeypatch.delenv("REPRO_NN_NATIVE_SANITIZE", raising=False)
        production = native_build.library_path()
        monkeypatch.setenv("REPRO_NN_NATIVE_SANITIZE", "undefined")
        sanitized = native_build.library_path()
        assert production != sanitized

    def test_every_flag_set_carries_the_sanitizers(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_NATIVE_SANITIZE", "undefined")
        for flags in native_build.flag_sets():
            assert "-fsanitize=undefined" in flags

    def test_asan_without_preloaded_runtime_is_a_build_error(
            self, monkeypatch):
        # dlopen-ing an ASan library into an uninstrumented interpreter
        # aborts the process; load() must turn that into the ordinary
        # degrade path before any dlopen happens.
        monkeypatch.setenv("REPRO_NN_NATIVE_SANITIZE", "address")
        monkeypatch.delenv("LD_PRELOAD", raising=False)
        with pytest.raises(native_build.NativeBuildError,
                           match="LD_PRELOAD"):
            native_build.load()


# ---------------------------------------------------------------------------
# Fallback behaviour
# ---------------------------------------------------------------------------

class TestFallback:
    def test_native_request_degrades_to_fast_with_one_warning(
            self, monkeypatch, tmp_path, restored_native_state):
        monkeypatch.setenv("CC", str(tmp_path / "missing-cc"))
        monkeypatch.setenv("REPRO_NN_NATIVE_CACHE_DIR", str(tmp_path))
        native.reset()
        # The process may already have consumed its one fallback warning
        # (e.g. a whole-suite run under REPRO_NN_BACKEND=native on a
        # no-compiler box); rearm it for this test.
        monkeypatch.setattr(F, "_NATIVE_FALLBACK_WARNED", False)
        previous = F.get_backend()
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                F.set_backend("native")
            assert F.get_backend() == "fast"
            # The load failure is memoised: switching again warns no more
            # (the single-warning contract for a whole no-compiler run).
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                F.set_backend("native")
            assert F.get_backend() == "fast"
        finally:
            F.set_backend(previous)

    def test_load_error_is_recorded(self, monkeypatch, tmp_path,
                                    restored_native_state):
        monkeypatch.setenv("CC", str(tmp_path / "missing-cc"))
        monkeypatch.setenv("REPRO_NN_NATIVE_CACHE_DIR", str(tmp_path))
        native.reset()
        assert not native.available()
        assert "missing-cc" in (native.load_error() or "")


# ---------------------------------------------------------------------------
# Dispatch policy
# ---------------------------------------------------------------------------

class TestDispatch:
    def test_one_by_one_stays_on_gemm_path(self):
        assert not _native_applicable((8, 8, 1, 1), 0)

    def test_wide_layers_stay_on_gemm_path(self):
        assert not _native_applicable((64, 64, 3, 3), 1)
        assert not _native_applicable((8, 64, 3, 3), 1)

    def test_exotic_padding_stays_on_gemm_path(self):
        assert not _native_applicable((8, 8, 3, 3), 3)

    def test_bandwidth_bound_regime_is_native(self):
        assert _native_applicable((8, 8, 3, 3), 1)
        assert _native_applicable((16, 3, 5, 5), 2)


# ---------------------------------------------------------------------------
# Weight pack padding
# ---------------------------------------------------------------------------

class TestPadPack:
    def test_aligned_pack_is_returned_untouched(self):
        pack = np.ascontiguousarray(
            np.random.default_rng(0).normal(size=(72, 8)).astype(np.float32))
        assert native.pad_pack(pack) is pack

    def test_odd_width_is_zero_padded(self):
        pack = np.random.default_rng(1).normal(size=(18, 3)).astype(np.float32)
        padded = native.pad_pack(pack)
        assert padded.shape == (18, native.LANES)
        np.testing.assert_array_equal(padded[:, :3], pack)
        assert not padded[:, 3:].any()

    def test_fortran_order_pack_is_made_contiguous(self):
        pack = np.asfortranarray(
            np.random.default_rng(2).normal(size=(18, 8)).astype(np.float32))
        padded = native.pad_pack(pack)
        assert padded.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(padded[:, :8], pack)


# ---------------------------------------------------------------------------
# Wrapper validation
# ---------------------------------------------------------------------------

@requires_native
class TestWrapperValidation:
    def test_rejects_wrong_dtype(self):
        xp = np.zeros((1, 4, 4, 8), np.float64)
        pack = np.zeros((72, 8), np.float32)
        out = np.zeros((1, 2, 2, 8), np.float32)
        with pytest.raises(TypeError, match="float32"):
            native.conv2d_forward(xp, pack, None, out, (3, 3), 1)

    def test_rejects_non_contiguous(self):
        xp = np.zeros((1, 4, 4, 16), np.float32)[:, :, :, ::2]
        pack = np.zeros((72, 8), np.float32)
        out = np.zeros((1, 2, 2, 8), np.float32)
        with pytest.raises(ValueError, match="contiguous"):
            native.conv2d_forward(xp, pack, None, out, (3, 3), 1)

    def test_rejects_unpadded_pack(self):
        xp = np.zeros((1, 4, 4, 8), np.float32)
        pack = np.zeros((72, 3), np.float32)      # 3 lanes: not a multiple
        out = np.zeros((1, 2, 2, 3), np.float32)
        with pytest.raises(ValueError, match="pad_pack"):
            native.conv2d_forward(xp, pack, None, out, (3, 3), 1)
