"""Tests for the shared engine-store socket service.

The service fronts one :class:`EngineStore` over a Unix socket so a fleet
of workers (or several CI legs) warm-start from a single cache.  Pinned
contracts: the remote store is a behavioural twin of the local one
(load/save round trip, merge-on-save), the engine transparently persists
through it when ``REPRO_ENGINE_STORE_SOCKET`` is set, and a dead service
degrades to a cold start with exactly one warning — never an exception.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.accelerator import (EvaluationEngine, TwoInOneAccelerator,
                               network_layers)
from repro.accelerator.engine_store import EngineStore, resolve_store
from repro.accelerator.optimizer import OptimizerConfig
from repro.accelerator.store_service import (EngineStoreServer,
                                             RemoteEngineStore)


@pytest.fixture()
def service(tmp_path):
    server = EngineStoreServer(tmp_path / "store.sock",
                               cache_dir=tmp_path / "cache")
    with server:
        yield server


def _accelerator(seed: int) -> TwoInOneAccelerator:
    return TwoInOneAccelerator(optimizer_config=OptimizerConfig(
        population_size=6, total_cycles=1, seed=seed))


class TestProtocol:
    FINGERPRINT = ("service", "test", 1)

    def test_ping(self, service):
        assert RemoteEngineStore(service.socket_path).ping()

    def test_round_trip_matches_local_store(self, service):
        client = RemoteEngineStore(service.socket_path)
        assert client.load(self.FINGERPRINT) is None
        client.save(self.FINGERPRINT, {("layer", 4): "cell"}, {"s": 1})
        cells, summaries = client.load(self.FINGERPRINT)
        assert dict(cells) == {("layer", 4): "cell"}
        assert summaries == {"s": 1}
        # The service wrote through its local store: same file, same bytes.
        local = service.store.load(self.FINGERPRINT)
        assert local is not None
        assert dict(local[0]) == dict(cells)

    def test_merge_on_save(self, service):
        client = RemoteEngineStore(service.socket_path)
        client.save(self.FINGERPRINT, {"a": 1}, {})
        client.save(self.FINGERPRINT, {"b": 2}, {})
        cells, _ = client.load(self.FINGERPRINT)
        assert dict(cells) == {"a": 1, "b": 2}

    def test_concurrent_clients(self, service):
        errors = []

        def hammer(worker: int) -> None:
            try:
                client = RemoteEngineStore(service.socket_path)
                for round_index in range(5):
                    client.save(self.FINGERPRINT,
                                {(worker, round_index): worker}, {})
                    assert client.load(self.FINGERPRINT) is not None
            except Exception as exc:    # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_cache_dir_identity_token(self, service):
        client = RemoteEngineStore(service.socket_path)
        assert str(client.cache_dir).startswith("socket://")


class TestDegradation:
    def test_dead_socket_loads_cold_with_one_warning(self, tmp_path):
        client = RemoteEngineStore(tmp_path / "nobody-home.sock")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert client.load(("x",)) is None
            assert client.save(("x",), {"a": 1}, {}) is None
            assert client.load(("x",)) is None
        service_warnings = [w for w in caught
                            if "unreachable" in str(w.message)]
        assert len(service_warnings) == 1


class TestResolveStore:
    def test_default_is_local(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_STORE_SOCKET", raising=False)
        store = resolve_store(tmp_path)
        assert isinstance(store, EngineStore)
        assert store.cache_dir == tmp_path

    def test_env_socket_gives_remote(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_STORE_SOCKET",
                           str(tmp_path / "s.sock"))
        store = resolve_store(tmp_path)
        assert isinstance(store, RemoteEngineStore)

    def test_socket_url_cache_dir_reresolves_remote(self, tmp_path,
                                                    monkeypatch):
        """A deferred flush re-resolves the ``socket://`` identity token it
        recorded, even after the env knob was cleared."""
        monkeypatch.delenv("REPRO_ENGINE_STORE_SOCKET", raising=False)
        store = resolve_store(f"socket://{tmp_path / 's.sock'}")
        assert isinstance(store, RemoteEngineStore)
        assert store.socket_path == tmp_path / "s.sock"


class TestEngineIntegration:
    def test_engine_warm_starts_through_service(self, tmp_path, monkeypatch,
                                                service):
        monkeypatch.setenv("REPRO_ENGINE_STORE_SOCKET",
                           str(service.socket_path))
        layers = network_layers("resnet18", "cifar10")[:2]

        first = _accelerator(seed=301)
        reference = first.evaluate_grid(layers, [4, 8], persist=True,
                                        cache_dir=tmp_path / "ignored")
        assert first.engine.cache_info()["misses"] > 0

        EvaluationEngine.reset_shared_stores()
        rerun = _accelerator(seed=301)
        warm = rerun.evaluate_grid(layers, [4, 8], persist=True,
                                   cache_dir=tmp_path / "ignored")
        info = rerun.engine.cache_info()
        assert info["misses"] == 0, "service-backed warm start re-simulated"
        assert info["disk_cells_loaded"] > 0
        assert np.array_equal(warm.total_cycles, reference.total_cycles)
        assert np.array_equal(warm.total_energy, reference.total_energy)

    def test_engine_survives_dead_service(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_STORE_SOCKET",
                           str(tmp_path / "gone.sock"))
        layers = network_layers("resnet18", "cifar10")[:1]
        accelerator = _accelerator(seed=302)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            grid = accelerator.evaluate_grid(layers, [4], persist=True,
                                             cache_dir=tmp_path / "ignored")
        assert np.all(grid.total_cycles > 0)
