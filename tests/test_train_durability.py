"""Durable-training contract: bit-identical resume under injected faults.

The acceptance bar of the durability PR, exercised in-process:

* a durable (checkpointed) uninterrupted run is **bit-identical** to the
  historical non-durable loop — same weights, history and rng stream;
* a run crashed by an injected fault (crash mid-batch, crash mid-save,
  corrupted read at resume) and then resumed lands on exactly the golden
  uninterrupted run's final state — zero lost work beyond the checkpoint
  interval, and a corrupted file costs exactly one warning, never a crash;
* divergence sentinels roll back to the last snapshot, skip a
  deterministically-diverging batch, and abort with
  :class:`DivergenceError` once the rollback budget is spent.

CI runs this file once per ``REPRO_FAULTS`` preset (the environment spec
replaces the built-in table, like the serving fault matrix); locally the
whole table runs parametrized.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro import checkpoint as ckpt
from repro import faults
from repro.defense import DivergenceError, Trainer, TrainingConfig
from repro.defense.adversarial import AdversarialConfig, AdversarialTrainer
from repro.models import preact_resnet18

#: name -> fault spec driven through the durable loop's sites.  ``n=1`` keeps
#: every preset a single injected failure so the resumed run must land on the
#: golden state exactly.
PRESETS = {
    "crash-on-save": "train.ckpt.save=error:n=1",
    "corrupt-on-load": "train.ckpt.load=corrupt:n=1",
    "crash-mid-epoch": "train.batch=error:p=0.25:n=1",
    "crash-on-data": "train.data.next=error:p=0.25:n=1",
}

_ENV_SPEC = os.environ.get("REPRO_FAULTS", "").strip()
if _ENV_SPEC:                             # CI leg: one preset via the env
    PRESETS = {"env": _ENV_SPEC}


@pytest.fixture(autouse=True)
def _mask_env_faults():
    """Faults activate only where a test installs a plan explicitly."""
    faults.install(None)
    yield
    faults.uninstall()


@pytest.fixture(autouse=True)
def _checkpoint_every_two_steps(monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_EVERY_STEPS", "2")
    monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)


def _data(tiny_dataset, n=160):
    return tiny_dataset.x_train[:n], tiny_dataset.y_train[:n]


def _trainer(tiny_dataset):
    model = preact_resnet18(num_classes=tiny_dataset.num_classes, width=8,
                            blocks_per_stage=(1, 1), seed=0)
    cfg = TrainingConfig(epochs=2, batch_size=32, lr=0.05, seed=11,
                         lr_milestones=(1,))
    return Trainer(model, cfg)


def _assert_same_final_state(a, b):
    sa, sb = a.model.state_dict(), b.model.state_dict()
    assert sa.keys() == sb.keys()
    for key in sa:
        assert np.array_equal(sa[key], sb[key]), key
    assert a.history.train_loss == b.history.train_loss
    assert a.history.train_accuracy == b.history.train_accuracy
    assert a.history.epochs_completed == b.history.epochs_completed
    assert a.rng.bit_generator.state == b.rng.bit_generator.state


class TestDurableEqualsLegacy:
    def test_natural_training_is_bit_identical(self, tiny_dataset, tmp_path):
        x, y = _data(tiny_dataset)
        legacy = _trainer(tiny_dataset)
        legacy.fit(x, y)
        durable = _trainer(tiny_dataset)
        durable.fit(x, y, checkpoint=tmp_path)
        _assert_same_final_state(legacy, durable)
        assert ckpt.CheckpointManager(tmp_path).steps() != []

    def test_adversarial_training_is_bit_identical(self, tiny_dataset,
                                                   tmp_path):
        x, y = _data(tiny_dataset, n=96)
        cfg = AdversarialConfig(epochs=1, batch_size=32, lr=0.05, seed=7,
                                method="pgd", attack_steps=2)

        def make():
            model = preact_resnet18(num_classes=tiny_dataset.num_classes,
                                    width=8, blocks_per_stage=(1, 1), seed=0)
            return AdversarialTrainer(model, cfg)

        legacy, durable = make(), make()
        legacy.fit(x, y)
        durable.fit(x, y, checkpoint=tmp_path)
        _assert_same_final_state(legacy, durable)

    def test_resume_without_a_manager_raises(self, tiny_dataset):
        x, y = _data(tiny_dataset, n=32)
        with pytest.raises(ValueError, match="resume"):
            _trainer(tiny_dataset).fit(x, y, resume=True)


class TestFaultMatrix:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_crashed_run_resumes_onto_the_golden_state(self, preset,
                                                       tiny_dataset,
                                                       tmp_path):
        x, y = _data(tiny_dataset)
        golden = _trainer(tiny_dataset)
        golden.fit(x, y)                  # faults masked by the fixture

        plan = faults.FaultPlan.parse(PRESETS[preset], seed=3)
        crashed = _trainer(tiny_dataset)
        with faults.installed(plan), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                crashed.fit(x, y, checkpoint=tmp_path)
            except faults.FaultError:
                pass                      # the simulated crash

        # Resume in a fresh trainer (a new process, in effect), still under
        # the same plan: load-side faults fire here and must degrade, not
        # crash; crash-side faults are already spent (n=1).
        resumed = _trainer(tiny_dataset)
        with faults.installed(plan), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed.fit(x, y, resume=True, checkpoint=tmp_path)
        _assert_same_final_state(golden, resumed)

    def test_corrupt_newest_checkpoint_costs_exactly_one_warning(
            self, tiny_dataset, tmp_path):
        x, y = _data(tiny_dataset)
        golden = _trainer(tiny_dataset)
        golden.fit(x, y)

        first = _trainer(tiny_dataset)
        first.fit(x, y, checkpoint=tmp_path)
        manager = ckpt.CheckpointManager(tmp_path)
        newest = manager.path_for(manager.steps()[-1])
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 3] ^= 0x10
        newest.write_bytes(bytes(blob))

        resumed = _trainer(tiny_dataset)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resumed.fit(x, y, resume=True, checkpoint=tmp_path)
        messages = [str(w.message) for w in caught]
        assert len(messages) == 1, messages
        assert "falling back" in messages[0]
        _assert_same_final_state(golden, resumed)


def _poison_fifth_batch(trainer):
    """Make the 5th distinct training batch report a NaN loss *by content*,
    so the post-rollback replay (and any resumed process) trips on exactly
    the same batch — the deterministic-divergence scenario."""
    original = trainer.train_batch
    state = {"count": 0, "poison": None}

    def wrapped(xb, yb):
        metrics = original(xb, yb)
        state["count"] += 1
        if state["count"] == 5 and state["poison"] is None:
            state["poison"] = xb.tobytes()
        if state["poison"] == xb.tobytes():
            return dict(metrics, loss=float("nan"))
        return metrics

    trainer.train_batch = wrapped
    return state


class TestDivergenceHandling:
    def test_rollback_then_skip_completes_the_run(self, tiny_dataset,
                                                  tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_ROLLBACK_BUDGET", "3")
        x, y = _data(tiny_dataset)
        trainer = _trainer(tiny_dataset)
        _poison_fifth_batch(trainer)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            history = trainer.fit(x, y, checkpoint=tmp_path)
        trips = [w for w in caught if "divergence" in str(w.message)]
        # Trip -> rollback -> deterministic replay trips again -> the batch
        # is skipped for good: exactly two rollbacks, then a full run.
        assert len(trips) == 2, [str(w.message) for w in caught]
        assert history.epochs_completed == 2
        assert all(np.isfinite(loss) for loss in history.train_loss)

    def test_exhausted_budget_aborts_loudly(self, tiny_dataset, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_ROLLBACK_BUDGET", "0")
        x, y = _data(tiny_dataset)
        trainer = _trainer(tiny_dataset)
        _poison_fifth_batch(trainer)
        with pytest.raises(DivergenceError, match="rollback budget"):
            trainer.fit(x, y, checkpoint=tmp_path)

    def test_sentinels_never_fire_on_healthy_training(self, tiny_dataset,
                                                      tmp_path):
        x, y = _data(tiny_dataset, n=96)
        trainer = _trainer(tiny_dataset)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            trainer.fit(x, y, epochs=1, checkpoint=tmp_path)
