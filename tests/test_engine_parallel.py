"""Process-sharded grid evaluation: bit-identical to the synchronous path
for any worker count and chunking, deterministic dataflow search per
(seed, layer shape, precision), and graceful fallback when no process pool
can be spawned."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    EvaluationEngine,
    StripesAccelerator,
    TwoInOneAccelerator,
    network_layers,
)
from repro.accelerator.optimizer import (
    EvolutionaryDataflowOptimizer,
    OptimizerConfig,
)
from repro.experiments import normalized_throughput_table

FAST = OptimizerConfig(population_size=6, total_cycles=1, seed=0)


@pytest.fixture()
def layers():
    return network_layers("resnet18", "cifar10")


def _cold() -> None:
    EvaluationEngine.reset_shared_stores()


def _grids_equal(a, b) -> bool:
    return (np.array_equal(a.compute_cycles, b.compute_cycles)
            and np.array_equal(a.total_cycles, b.total_cycles)
            and np.array_equal(a.total_energy, b.total_energy)
            and all(np.array_equal(a.memory_cycles[k], b.memory_cycles[k])
                    for k in a.memory_cycles)
            and all(np.array_equal(a.energy[k], b.energy[k])
                    for k in a.energy))


class TestShardedIdentity:
    def test_workers_bit_identical_to_synchronous(self, layers):
        _cold()
        sharded = TwoInOneAccelerator(optimizer_config=FAST).evaluate_grid(
            layers, [2, 4, 8], workers=3)
        _cold()
        synchronous = TwoInOneAccelerator(optimizer_config=FAST).evaluate_grid(
            layers, [2, 4, 8], workers=1)
        assert _grids_equal(sharded, synchronous)

    def test_parallel_persistent_matches_plain(self, tmp_path, layers):
        """The acceptance contract: evaluate_grid(workers=N, persist=True)
        equals workers=1, persist=False — and a warm reload equals both."""
        _cold()
        filler = TwoInOneAccelerator(optimizer_config=FAST)
        fancy = filler.evaluate_grid(
            layers, [2, 4, 8], workers=2, persist=True, cache_dir=tmp_path)
        # The workers' mapping summaries and searched dataflows must ride
        # back to the parent (and into the store) exactly as a synchronous
        # fill would leave them — not be discarded with the worker process.
        assert len(filler.engine._summaries) > 0
        assert len(filler._dataflow_cache) > 0
        from repro.accelerator import EngineStore
        stored = EngineStore(tmp_path).load(filler.engine.config_fingerprint())
        assert stored is not None and len(stored[1]) > 0
        _cold()
        plain = TwoInOneAccelerator(optimizer_config=FAST).evaluate_grid(
            layers, [2, 4, 8], workers=1, persist=False)
        assert _grids_equal(fancy, plain)
        _cold()
        warm_accelerator = TwoInOneAccelerator(optimizer_config=FAST)
        warm = warm_accelerator.evaluate_grid(
            layers, [2, 4, 8], workers=2, persist=True, cache_dir=tmp_path)
        assert warm_accelerator.engine.cache_info()["misses"] == 0
        assert _grids_equal(warm, plain)

    def test_fig7_table_identical_for_1_and_4_workers(self):
        """Fig. 7 rows — the paper's headline normalized-throughput grid —
        must not depend on how the evaluation is sharded."""
        workloads = (("resnet18", "cifar10"), ("wide_resnet32", "cifar10"))
        _cold()
        serial = normalized_throughput_table(
            precisions=(2, 4, 8, 16), workloads=workloads,
            optimizer_config=FAST, workers=1)
        _cold()
        sharded = normalized_throughput_table(
            precisions=(2, 4, 8, 16), workloads=workloads,
            optimizer_config=FAST, workers=4)
        assert serial == sharded    # exact float equality, row for row

    def test_worker_env_default(self, layers, monkeypatch):
        _cold()
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "2")
        via_env = StripesAccelerator(optimizer_config=FAST).evaluate_grid(
            layers, [4, 8])
        _cold()
        monkeypatch.delenv("REPRO_ENGINE_WORKERS")
        serial = StripesAccelerator(optimizer_config=FAST).evaluate_grid(
            layers, [4, 8])
        assert _grids_equal(via_env, serial)


class TestSearchDeterminism:
    def test_optimize_layer_is_order_independent(self, layers):
        """Each (layer, precision) search draws from a private RNG, so the
        call order — and therefore the worker chunking — cannot change the
        chosen dataflow."""
        subset = layers[:6]
        model = TwoInOneAccelerator(optimizer_config=FAST).model
        forward = EvolutionaryDataflowOptimizer(model, FAST)
        backward = EvolutionaryDataflowOptimizer(model, FAST)
        chosen_forward = {layer.name: forward.optimize_layer(layer, 4)[0].key()
                          for layer in subset}
        chosen_backward = {layer.name: backward.optimize_layer(layer, 4)[0].key()
                           for layer in reversed(subset)}
        assert chosen_forward == chosen_backward

    def test_repeated_searches_are_identical(self, layers):
        model = TwoInOneAccelerator(optimizer_config=FAST).model
        layer = layers[0]
        first_flow, first_perf = EvolutionaryDataflowOptimizer(
            model, FAST).optimize_layer(layer, 4)
        second_flow, second_perf = EvolutionaryDataflowOptimizer(
            model, FAST).optimize_layer(layer, 4)
        assert first_flow.key() == second_flow.key()
        assert first_perf.total_cycles == second_perf.total_cycles
        assert first_perf.total_energy == second_perf.total_energy

    def test_seed_still_matters(self, layers):
        """The per-(layer, precision) RNG derivation must still include the
        config seed: distinct seeds yield distinct random streams (even if
        the search then converges to the same greedy-seeded winner)."""
        from repro.quantization import Precision

        model = TwoInOneAccelerator(optimizer_config=FAST).model
        layer = layers[-1]
        draws = set()
        for seed in range(4):
            config = OptimizerConfig(population_size=6, total_cycles=1,
                                     seed=seed)
            rng = EvolutionaryDataflowOptimizer(
                model, config)._layer_rng(layer, Precision(5))
            draws.add(float(rng.random()))
        assert len(draws) == 4


class TestFallback:
    def test_unspawnable_pool_falls_back_to_synchronous(self, layers,
                                                        monkeypatch):
        import repro.accelerator.engine as engine_module

        def refuse(*args, **kwargs):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", refuse)
        _cold()
        fallback = TwoInOneAccelerator(optimizer_config=FAST).evaluate_grid(
            layers, [4, 8], workers=4)
        monkeypatch.undo()
        _cold()
        serial = TwoInOneAccelerator(optimizer_config=FAST).evaluate_grid(
            layers, [4, 8], workers=1)
        assert _grids_equal(fallback, serial)

    def test_single_missing_cell_stays_synchronous(self, layers):
        """A one-cell refill must not pay process-pool startup."""
        _cold()
        accelerator = TwoInOneAccelerator(optimizer_config=FAST)
        accelerator.evaluate_grid(layers, [4], workers=1)
        import repro.accelerator.engine as engine_module

        class Exploder:
            def __init__(self, *args, **kwargs):
                raise AssertionError("pool must not be created")

        original = engine_module.ProcessPoolExecutor
        engine_module.ProcessPoolExecutor = Exploder
        try:
            grid = accelerator.evaluate_grid(layers[:1], [4, 5], workers=4)
        finally:
            engine_module.ProcessPoolExecutor = original
        assert np.all(grid.total_cycles > 0)
