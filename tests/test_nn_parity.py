"""Parity suite: channels-last fast backend vs the im2col reference backend.

The fast backend reorders float32 reductions (one big GEMM vs. N small ones,
NHWC vs. NCHW axis order, BLAS row-sums for channel statistics), so forward
activations match the reference to ~1e-6 relative rather than bitwise —
except pooling forwards, which only move or compare values and must match
exactly.  Gradients accumulate longer chains and are compared at a slightly
looser tolerance.

Also covers the supporting machinery introduced with the fast backend: the
workspace arena's leak-never-corrupt guarantees, the quantized-weight cache's
version invalidation, and batched attack restarts.
"""

import os

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import native
from repro.nn import Tensor
from repro.nn.module import Parameter
from repro.nn.workspace import Workspace, default_workspace

FWD_TOL = dict(rtol=2e-5, atol=2e-6)
GRAD_TOL = dict(rtol=2e-4, atol=5e-5)

#: The native parity tests build the C kernels on first use; on a machine
#: without a compiler they are skipped (the clean-degradation behaviour
#: itself is covered by tests/test_native_backend.py).
NATIVE_AVAILABLE = native.available()
requires_native = pytest.mark.skipif(
    not NATIVE_AVAILABLE, reason="native kernels unavailable (no C compiler)")


def both_backends(fn):
    """Run ``fn`` under each backend and return {backend: result}."""
    results = {}
    for backend in ("reference", "fast"):
        with F.use_backend(backend):
            results[backend] = fn()
    return results


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------

CONV_CASES = [
    # (n, c_in, h, w, c_out, k, stride, padding, bias)
    (2, 3, 7, 7, 4, 3, 1, 0, True),      # no padding
    (2, 3, 7, 7, 4, 3, 1, 1, False),     # same padding
    (2, 3, 7, 9, 4, 3, 2, 1, True),      # stride 2 + padding, non-square
    (2, 5, 8, 6, 3, 3, 2, 0, False),     # stride 2, no padding, non-square
    (2, 4, 9, 9, 6, 1, 1, 0, True),      # 1x1 kernel
    (2, 4, 9, 9, 6, 1, 2, 0, False),     # strided 1x1
    (3, 2, 11, 5, 4, 5, 2, 2, True),     # 5x5, stride 2, padding 2
    (2, 3, 8, 8, 4, 2, 2, 0, False),     # even kernel
    (1, 2, 6, 6, 2, 4, 3, 1, True),      # stride 3 (remainder rows)
    (2, 8, 16, 12, 8, 3, 2, 1, False),   # wider channels
]


@pytest.mark.parametrize("case", CONV_CASES,
                         ids=[f"c{i}" for i in range(len(CONV_CASES))])
def test_conv2d_forward_and_grad_parity(case):
    n, c_in, h, w, c_out, k, stride, padding, bias = case
    rng = np.random.default_rng(hash(case) % 2 ** 32)
    x = rng.normal(size=(n, c_in, h, w)).astype(np.float32)
    wt = rng.normal(size=(c_out, c_in, k, k)).astype(np.float32)
    b = rng.normal(size=(c_out,)).astype(np.float32) if bias else None
    oh = (h + 2 * padding - k) // stride + 1
    ow = (w + 2 * padding - k) // stride + 1
    seed = rng.normal(size=(n, c_out, oh, ow)).astype(np.float32)

    def run():
        xt = Tensor(x, requires_grad=True)
        wtt = Parameter(wt)
        bt = Parameter(b) if bias else None
        out = F.conv2d(xt, wtt, bt, stride=stride, padding=padding)
        out.backward(seed)
        grads = [xt.grad, wtt.grad] + ([bt.grad] if bias else [])
        return [out.data] + grads

    res = both_backends(run)
    np.testing.assert_allclose(res["fast"][0], res["reference"][0], **FWD_TOL)
    for fast_g, ref_g in zip(res["fast"][1:], res["reference"][1:]):
        np.testing.assert_allclose(fast_g, ref_g, **GRAD_TOL)


def test_conv2d_channels_last_input_matches_contiguous():
    """The fast path must give identical results for any input memory layout."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
    x_cl = np.ascontiguousarray(x.transpose(0, 2, 3, 1)).transpose(0, 3, 1, 2)
    wt = Parameter(rng.normal(size=(3, 4, 3, 3)).astype(np.float32))
    out_a = F.conv2d(Tensor(x), wt, None, stride=1, padding=1)
    out_b = F.conv2d(Tensor(x_cl), wt, None, stride=1, padding=1)
    np.testing.assert_allclose(out_a.data, out_b.data, rtol=1e-6, atol=1e-7)


def test_conv2d_output_is_channels_last():
    rng = np.random.default_rng(1)
    x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
    wt = Parameter(rng.normal(size=(4, 3, 3, 3)).astype(np.float32))
    out = F.conv2d(x, wt, None, stride=1, padding=1,
                   workspace=default_workspace())
    assert out.data.transpose(0, 2, 3, 1).flags["C_CONTIGUOUS"]


# ---------------------------------------------------------------------------
# Pooling — max pooling only moves values, so its forward is bitwise
# identical; average pooling divides by the window size, whose summation
# order differs between backends (1-ULP diffs for windows like 3x3).
# ---------------------------------------------------------------------------

POOL_CASES = [
    (2, 3, 8, 8, 2, 2),
    (2, 4, 9, 7, 3, 2),     # stride < kernel (overlapping), non-square
    (1, 2, 6, 6, 2, 3),     # stride > kernel
    (2, 8, 16, 16, 4, 4),
]


@pytest.mark.parametrize("pool", ["max", "avg"])
@pytest.mark.parametrize("case", POOL_CASES,
                         ids=[f"p{i}" for i in range(len(POOL_CASES))])
def test_pool_parity(pool, case):
    n, c, h, w, k, stride = case
    rng = np.random.default_rng(hash(case) % 2 ** 32)
    x = rng.normal(size=(n, c, h, w)).astype(np.float32)
    op = F.max_pool2d if pool == "max" else F.avg_pool2d
    oh = (h - k) // stride + 1
    ow = (w - k) // stride + 1
    seed = rng.normal(size=(n, c, oh, ow)).astype(np.float32)

    def run():
        xt = Tensor(x, requires_grad=True)
        out = op(xt, k, stride)
        out.backward(seed)
        return out.data, xt.grad

    res = both_backends(run)
    if pool == "max":
        assert np.array_equal(res["fast"][0], res["reference"][0])   # bitwise
    else:
        np.testing.assert_allclose(res["fast"][0], res["reference"][0], **FWD_TOL)
    np.testing.assert_allclose(res["fast"][1], res["reference"][1], **GRAD_TOL)


# ---------------------------------------------------------------------------
# Batch norm
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("training", [True, False])
@pytest.mark.parametrize("shape", [(8, 4, 5, 5), (4, 16, 8, 6), (6, 3, 7, 7)])
def test_batch_norm_parity(training, shape):
    n, c, h, w = shape
    rng = np.random.default_rng(hash((training,) + shape) % 2 ** 32)
    x = rng.normal(2.0, 3.0, size=shape).astype(np.float32)
    seed = rng.normal(size=shape).astype(np.float32)

    def run():
        xt = Tensor(x, requires_grad=True)
        gamma = Parameter(np.linspace(0.5, 2.0, c).astype(np.float32))
        beta = Parameter(np.linspace(-1.0, 1.0, c).astype(np.float32))
        rm = np.linspace(-0.5, 0.5, c).astype(np.float32)
        rv = np.linspace(0.5, 1.5, c).astype(np.float32)
        out = F.batch_norm(xt, gamma, beta, rm, rv, training=training)
        out.backward(seed)
        return out.data, xt.grad, gamma.grad, beta.grad, rm, rv

    res = both_backends(run)
    np.testing.assert_allclose(res["fast"][0], res["reference"][0], **FWD_TOL)
    for fast_g, ref_g in zip(res["fast"][1:4], res["reference"][1:4]):
        np.testing.assert_allclose(fast_g, ref_g, **GRAD_TOL)
    # Running statistics (updated in place during training).
    np.testing.assert_allclose(res["fast"][4], res["reference"][4], **FWD_TOL)
    np.testing.assert_allclose(res["fast"][5], res["reference"][5], **FWD_TOL)


# ---------------------------------------------------------------------------
# All registered models
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["preact_resnet18", "wide_resnet32",
                                  "resnet18", "alexnet", "vgg16"])
def test_model_forward_and_grad_parity(name):
    # 8-bit execution: quantisation active, BN chains well-conditioned.
    from repro.models import build_model
    from repro.quantization import Precision, PrecisionSet, set_model_precision

    rng = np.random.default_rng(0)
    size = 32 if name in ("alexnet", "vgg16") else 16
    x = rng.random((4, 3, size, size), dtype=np.float32)
    y = rng.integers(0, 10, 4)
    ps = PrecisionSet([4, 8])

    def run():
        model = build_model(name, num_classes=10, precisions=ps, scale=8, seed=0)
        set_model_precision(model, Precision(8))
        model.train()
        xt = Tensor(x, requires_grad=True)
        logits = model(xt)
        loss = F.cross_entropy(logits, y)
        loss.backward()
        params = model.parameters()
        return (logits.data, loss.item(), xt.grad,
                params[0].grad, params[-1].grad)

    res = both_backends(run)
    np.testing.assert_allclose(res["fast"][0], res["reference"][0],
                               rtol=2e-4, atol=2e-5)
    assert res["fast"][1] == pytest.approx(res["reference"][1], rel=1e-4)
    for fast_g, ref_g in zip(res["fast"][2:], res["reference"][2:]):
        assert fast_g is not None and ref_g is not None
        np.testing.assert_allclose(fast_g, ref_g, rtol=1e-3, atol=1e-4)


def test_resnet50_full_precision_parity():
    """ResNet-50 at bench width is 50 layers deep and, when quantised,
    chaotic at the ULP-accumulation scale: the *reference backend by
    itself* flips decisions and decorrelates input gradients (cosine ~0.1)
    under a 1e-5 input perturbation at 8-bit, because one flipped rounding
    decision shifts an activation by a whole quantisation step.  Cross-
    backend parity is therefore only meaningful at full precision, at the
    model's own conditioning floor (~1e-4 logit movement under 2e-7 input
    noise)."""
    from repro.models import build_model

    rng = np.random.default_rng(0)
    x = rng.random((4, 3, 16, 16), dtype=np.float32)
    y = rng.integers(0, 10, 4)

    def run():
        model = build_model("resnet50", num_classes=10, scale=8, seed=0)
        model.train()
        xt = Tensor(x, requires_grad=True)
        logits = model(xt)
        F.cross_entropy(logits, y).backward()
        return logits.data, xt.grad

    res = both_backends(run)
    np.testing.assert_allclose(res["fast"][0], res["reference"][0],
                               rtol=1e-2, atol=2e-3)
    g_f, g_r = res["fast"][1].ravel(), res["reference"][1].ravel()
    cosine = float(g_f @ g_r / (np.linalg.norm(g_f) * np.linalg.norm(g_r)))
    assert cosine > 0.98


def test_model_low_bit_gradient_direction_parity():
    """At very low bit-widths the tiny per-op reduction-order differences are
    amplified by ill-conditioned BN chains (quantised activations have small
    variance, so the backward gain ``gamma/std`` is large); elementwise
    tolerances are meaningless there, but the gradient *direction* — what the
    attacks and the optimizer consume — must still agree.  The fast backward
    itself is exactly deterministic (see TestWorkspace)."""
    from repro.models import build_model
    from repro.quantization import Precision, PrecisionSet, set_model_precision

    rng = np.random.default_rng(0)
    x = rng.random((4, 3, 16, 16), dtype=np.float32)
    y = rng.integers(0, 10, 4)
    ps = PrecisionSet([4, 8])

    def run():
        model = build_model("preact_resnet18", num_classes=10, precisions=ps,
                            scale=8, seed=0)
        set_model_precision(model, Precision(4))
        model.train()
        xt = Tensor(x, requires_grad=True)
        logits = model(xt)
        F.cross_entropy(logits, y).backward()
        return logits.data, xt.grad

    res = both_backends(run)
    np.testing.assert_allclose(res["fast"][0], res["reference"][0],
                               rtol=2e-4, atol=2e-5)
    g_f, g_r = res["fast"][1].ravel(), res["reference"][1].ravel()
    cosine = float(g_f @ g_r / (np.linalg.norm(g_f) * np.linalg.norm(g_r)))
    assert cosine > 0.995
    # The attack consumes sign(grad): signs must agree almost everywhere.
    sign_agreement = float((np.sign(g_f) == np.sign(g_r)).mean())
    assert sign_agreement > 0.97


# ---------------------------------------------------------------------------
# Workspace arena safety
# ---------------------------------------------------------------------------

class TestWorkspace:
    def test_reuses_buffers_across_steps(self):
        ws = Workspace(max_bytes=1 << 20)
        a = ws.acquire((64, 64))
        ident = id(a)
        del a
        ws.end_step()
        b = ws.acquire((64, 64))
        assert id(b) == ident

    def test_escaped_buffer_is_never_recycled(self):
        ws = Workspace(max_bytes=1 << 20)
        a = ws.acquire((32, 32))
        ws.end_step()                    # a is marked reusable but still held
        b = ws.acquire((32, 32))
        assert b is not a                # refcount guard rejected the reuse

    def test_view_of_buffer_blocks_recycling(self):
        ws = Workspace(max_bytes=1 << 20)
        a = ws.acquire((32, 32))
        view = a[:4]
        del a
        ws.end_step()
        b = ws.acquire((32, 32))
        assert b is not view.base

    def test_release_returns_buffer_within_step(self):
        ws = Workspace(max_bytes=1 << 20)
        a = ws.acquire((16, 16))
        ident = id(a)
        ws.release(a)
        del a
        b = ws.acquire((16, 16))
        assert id(b) == ident
        # end_step must not double-stash the released buffer.
        del b
        ws.end_step()
        c = ws.acquire((16, 16))
        d = ws.acquire((16, 16))
        assert c is not d

    def test_byte_cap_evicts(self):
        ws = Workspace(max_bytes=10 * 1024)
        for i in range(8):
            buf = ws.acquire((1024,))    # 4 KiB each
            del buf
            ws.end_step()
            ws.acquire((512 + i,))       # distinct keys keep pressure up
            ws.end_step()
        total = sum(b.nbytes for bucket in ws._free.values() for b in bucket)
        assert total <= 10 * 1024

    def test_disabled_workspace_allocates(self):
        ws = Workspace(max_bytes=0)
        a = ws.acquire((8, 8))
        del a
        ws.end_step()
        b = ws.acquire((8, 8))
        assert b.shape == (8, 8)

    def test_training_is_workspace_stable(self):
        """Two identical training runs give identical results (no buffer
        cross-talk through the arena)."""
        from repro.models import build_model
        from repro.defense.trainer import Trainer, TrainingConfig

        rng = np.random.default_rng(0)
        x = rng.random((32, 3, 8, 8), dtype=np.float32)
        y = rng.integers(0, 10, 32)

        def run():
            model = build_model("preact_resnet18", num_classes=10, scale=4, seed=0)
            trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=16, seed=0))
            trainer.fit(x, y, epochs=1)
            return model(Tensor(x[:8])).data.copy()

        np.testing.assert_array_equal(run(), run())


# ---------------------------------------------------------------------------
# Quantized-weight cache
# ---------------------------------------------------------------------------

class TestQuantWeightCache:
    def _layer(self):
        from repro.quantization import Precision, QuantConv2d
        layer = QuantConv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0))
        layer.set_precision(Precision(4))
        return layer

    def test_cache_hit_when_unchanged(self):
        layer = self._layer()
        x = Tensor(np.random.default_rng(1).random((2, 3, 6, 6), dtype=np.float32))
        layer(x)
        entry = layer._wq_cache[4]
        layer(x)
        assert layer._wq_cache[4] is entry          # same entry reused

    def test_optimizer_step_invalidates(self):
        layer = self._layer()
        x = Tensor(np.random.default_rng(1).random((2, 3, 6, 6), dtype=np.float32))
        out = layer(x)
        out.sum().backward()
        before = layer._wq_cache[4][1].copy()
        nn.SGD(layer.parameters(), lr=0.5).step()
        out2 = layer(x)
        after = layer._wq_cache[4][1]
        assert not np.array_equal(before, after)    # re-quantised new weights

    def test_load_state_dict_invalidates(self):
        layer = self._layer()
        x = Tensor(np.random.default_rng(1).random((2, 3, 6, 6), dtype=np.float32))
        layer(x)
        state = layer.state_dict()
        state["weight"] = state["weight"] + 1.0
        layer.load_state_dict(state)
        out = layer(x)
        fresh = self._layer()
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(out.data, fresh(x).data)

    def test_cached_gradients_match_uncached(self):
        x_data = np.random.default_rng(2).random((2, 3, 6, 6), dtype=np.float32)

        def grads(disable_cache):
            if disable_cache:
                os.environ["REPRO_NN_QUANT_CACHE"] = "0"
            try:
                layer = self._layer()
                out = layer(Tensor(x_data))          # warm the cache
                layer.zero_grad()
                out = layer(Tensor(x_data))
                out.sum().backward()
                return layer.weight.grad.copy()
            finally:
                os.environ.pop("REPRO_NN_QUANT_CACHE", None)

        np.testing.assert_allclose(grads(False), grads(True), rtol=1e-6, atol=1e-7)


# ---------------------------------------------------------------------------
# Batched attack restarts
# ---------------------------------------------------------------------------

class TestBatchedRestarts:
    def _setup(self):
        from repro.models import build_model
        model = build_model("preact_resnet18", num_classes=10, scale=4, seed=0)
        model.eval()
        rng = np.random.default_rng(3)
        x = rng.random((8, 3, 8, 8), dtype=np.float32)
        y = rng.integers(0, 10, 8)
        return model, x, y

    def test_pgd_batched_equals_sequential(self):
        from repro.attacks import PGD
        model, x, y = self._setup()

        def run(batched):
            os.environ["REPRO_NN_BATCHED_RESTARTS"] = "1" if batched else "0"
            try:
                attack = PGD(8 / 255, steps=4, restarts=3,
                             rng=np.random.default_rng(7))
                return attack.perturb(model, x, y)
            finally:
                os.environ.pop("REPRO_NN_BATCHED_RESTARTS", None)

        adv_seq = run(False)
        adv_bat = run(True)
        # Same restart noises (identical rng draws) and per-example
        # independent gradients: the iterates coincide numerically.
        np.testing.assert_allclose(adv_bat, adv_seq, rtol=1e-5, atol=1e-6)

    def test_pgd_batched_stays_in_ball(self):
        from repro.attacks import PGD
        model, x, y = self._setup()
        eps = 8 / 255
        attack = PGD(eps, steps=3, restarts=4, rng=np.random.default_rng(9))
        adv = attack.perturb(model, x, y)
        assert adv.shape == x.shape
        assert np.all(np.abs(adv - x) <= eps + 1e-6)
        assert np.all((adv >= 0.0) & (adv <= 1.0))

    def test_epgd_batched_matches_sequential_strength(self):
        """E-PGD always runs quantised, and activation quantisation ranges
        are batch-global, so stacking restarts shifts the quantisation grid
        slightly — iterates are not bitwise equal (unlike full-precision
        PGD, test above).  The batched attack must still respect the same
        constraints and reach equivalent strength."""
        from repro.attacks import EnsemblePGD
        from repro.models import build_model
        from repro.quantization import PrecisionSet
        ps = PrecisionSet([3, 5])
        model = build_model("preact_resnet18", num_classes=10, precisions=ps,
                            scale=4, seed=0)
        model.eval()
        rng = np.random.default_rng(4)
        x = rng.random((16, 3, 8, 8), dtype=np.float32)
        y = rng.integers(0, 10, 16)
        eps = 8 / 255

        def success_rate(batched):
            os.environ["REPRO_NN_BATCHED_RESTARTS"] = "1" if batched else "0"
            try:
                attack = EnsemblePGD(eps, ps, steps=3, restarts=2,
                                     rng=np.random.default_rng(11))
                result = attack.run(model, x, y)
                assert np.all(np.abs(result.x_adv - x) <= eps + 1e-6)
                assert np.all((result.x_adv >= 0) & (result.x_adv <= 1))
                return result.success_rate
            finally:
                os.environ.pop("REPRO_NN_BATCHED_RESTARTS", None)

        assert abs(success_rate(True) - success_rate(False)) <= 3 / 16

    def test_single_restart_unchanged(self):
        from repro.attacks import PGD
        model, x, y = self._setup()
        a1 = PGD(8 / 255, steps=3, rng=np.random.default_rng(5)).perturb(model, x, y)
        a2 = PGD(8 / 255, steps=3, rng=np.random.default_rng(5)).perturb(model, x, y)
        np.testing.assert_array_equal(a1, a2)


# ---------------------------------------------------------------------------
# Native direct-convolution backend: parity vs the fast core
# ---------------------------------------------------------------------------
#
# The native kernels accumulate every output pixel over the same
# (tap row, tap col, channel) reduction axis as the GEMM, so results agree
# with the fast backend at the ULP level (often bitwise at bench widths);
# the same FWD/GRAD tolerances as fast-vs-reference apply with margin.
# Convolutions outside the direct-kernel regime (1x1, wide channels,
# exotic padding) intentionally share the fast code path, so the sweep
# also pins the dispatch doing no harm there.

@requires_native
@pytest.mark.parametrize("case", CONV_CASES,
                         ids=[f"n{i}" for i in range(len(CONV_CASES))])
def test_conv2d_native_forward_and_grad_parity(case):
    n, c_in, h, w, c_out, k, stride, padding, bias = case
    rng = np.random.default_rng(hash(case) % 2 ** 32)
    x = rng.normal(size=(n, c_in, h, w)).astype(np.float32)
    wt = rng.normal(size=(c_out, c_in, k, k)).astype(np.float32)
    b = rng.normal(size=(c_out,)).astype(np.float32) if bias else None
    oh = (h + 2 * padding - k) // stride + 1
    ow = (w + 2 * padding - k) // stride + 1
    seed = rng.normal(size=(n, c_out, oh, ow)).astype(np.float32)

    def run():
        xt = Tensor(x, requires_grad=True)
        wtt = Parameter(wt)
        bt = Parameter(b) if bias else None
        out = F.conv2d(xt, wtt, bt, stride=stride, padding=padding)
        out.backward(seed)
        grads = [xt.grad, wtt.grad] + ([bt.grad] if bias else [])
        return [out.data] + grads

    results = {}
    for backend in ("fast", "native"):
        with F.use_backend(backend):
            results[backend] = run()
    np.testing.assert_allclose(results["native"][0], results["fast"][0],
                               **FWD_TOL)
    for native_g, fast_g in zip(results["native"][1:], results["fast"][1:]):
        np.testing.assert_allclose(native_g, fast_g, **GRAD_TOL)


@requires_native
def test_native_grad_accumulation_matches_fast():
    """A conv input consumed twice accumulates both contributions (the
    native input-gradient kernel adds in place on the second pass)."""
    rng = np.random.default_rng(11)
    x = rng.normal(size=(2, 4, 8, 8)).astype(np.float32)
    w1 = rng.normal(size=(4, 4, 3, 3)).astype(np.float32)
    w2 = rng.normal(size=(4, 4, 3, 3)).astype(np.float32)

    def run():
        xt = Tensor(x, requires_grad=True)
        a = F.conv2d(xt, Parameter(w1), None, stride=1, padding=1)
        b = F.conv2d(xt, Parameter(w2), None, stride=1, padding=1)
        (a + b).sum().backward()
        return xt.grad

    grads = {}
    for backend in ("fast", "native"):
        with F.use_backend(backend):
            grads[backend] = run()
    np.testing.assert_allclose(grads["native"], grads["fast"], **GRAD_TOL)


@requires_native
@pytest.mark.parametrize("name", ["preact_resnet18", "wide_resnet32",
                                  "resnet18", "alexnet", "vgg16"])
def test_model_native_forward_and_grad_parity(name):
    """Full-model native-vs-fast parity, mirroring the fast-vs-reference
    test above (same probes, same 8-bit execution).

    vgg16 is chaos-bounded instead of elementwise: its 13-deep 8-bit
    activation-quantiser chain flips a quantisation bin under ULP-level
    input perturbation (measured: one bin flip at conv 3 grows to ~0.2 on
    the logits), so — as with the low-bit and ResNet-50 suites above —
    only direction/decision agreement is meaningful there.  For the same
    reason the probe starts from a drained arena: buffers pooled by
    whichever tests ran earlier shift which acquires recycle vs allocate,
    and through that chaos the measured vgg16 gradient cosine moves with
    test ordering — this test compares backends, not pool histories.
    """
    from repro.models import build_model
    from repro.nn.workspace import default_workspace
    from repro.quantization import Precision, PrecisionSet, set_model_precision

    default_workspace().clear()

    rng = np.random.default_rng(0)
    size = 32 if name in ("alexnet", "vgg16") else 16
    x = rng.random((4, 3, size, size), dtype=np.float32)
    y = rng.integers(0, 10, 4)
    ps = PrecisionSet([4, 8])

    def run():
        model = build_model(name, num_classes=10, precisions=ps, scale=8, seed=0)
        set_model_precision(model, Precision(8))
        model.train()
        xt = Tensor(x, requires_grad=True)
        logits = model(xt)
        loss = F.cross_entropy(logits, y)
        loss.backward()
        params = model.parameters()
        return (logits.data, loss.item(), xt.grad,
                params[0].grad, params[-1].grad)

    results = {}
    for backend in ("fast", "native"):
        with F.use_backend(backend):
            results[backend] = run()
    if name == "vgg16":
        # Once the forward flips a bin the two backends execute different
        # quantised networks, so gradients agree in direction, not value
        # (measured cosine ~0.89, sign agreement ~0.85 on this probe).
        assert np.array_equal(results["native"][0].argmax(axis=1),
                              results["fast"][0].argmax(axis=1))
        assert results["native"][1] == pytest.approx(results["fast"][1],
                                                     rel=5e-2)
        for native_g, fast_g in zip(results["native"][2:],
                                    results["fast"][2:]):
            g_n, g_f = native_g.ravel(), fast_g.ravel()
            cosine = float(g_n @ g_f
                           / (np.linalg.norm(g_n) * np.linalg.norm(g_f)))
            assert cosine > 0.75
        return
    np.testing.assert_allclose(results["native"][0], results["fast"][0],
                               rtol=2e-4, atol=2e-5)
    assert results["native"][1] == pytest.approx(results["fast"][1], rel=1e-4)
    for native_g, fast_g in zip(results["native"][2:], results["fast"][2:]):
        assert native_g is not None and fast_g is not None
        np.testing.assert_allclose(native_g, fast_g, rtol=1e-3, atol=1e-4)


@requires_native
def test_resnet50_native_full_precision_parity():
    """Same conditioning-floor contract as the fast-vs-reference ResNet-50
    test: elementwise agreement at the model's own noise floor plus
    gradient-direction agreement."""
    from repro.models import build_model

    rng = np.random.default_rng(0)
    x = rng.random((4, 3, 16, 16), dtype=np.float32)
    y = rng.integers(0, 10, 4)

    def run():
        model = build_model("resnet50", num_classes=10, scale=8, seed=0)
        model.train()
        xt = Tensor(x, requires_grad=True)
        logits = model(xt)
        F.cross_entropy(logits, y).backward()
        return logits.data, xt.grad

    results = {}
    for backend in ("fast", "native"):
        with F.use_backend(backend):
            results[backend] = run()
    np.testing.assert_allclose(results["native"][0], results["fast"][0],
                               rtol=1e-2, atol=2e-3)
    g_n = results["native"][1].ravel()
    g_f = results["fast"][1].ravel()
    cosine = float(g_n @ g_f / (np.linalg.norm(g_n) * np.linalg.norm(g_f)))
    assert cosine > 0.98


@requires_native
def test_native_thread_count_does_not_change_results(monkeypatch):
    """Each output pixel is accumulated by exactly one thread in a fixed
    order, so REPRO_NN_THREADS must not perturb a single bit."""
    rng = np.random.default_rng(5)
    x = rng.normal(size=(4, 8, 12, 12)).astype(np.float32)
    wt = rng.normal(size=(8, 8, 3, 3)).astype(np.float32)
    seed = rng.normal(size=(4, 8, 12, 12)).astype(np.float32)

    def run():
        xt = Tensor(x, requires_grad=True)
        wtt = Parameter(wt)
        out = F.conv2d(xt, wtt, None, stride=1, padding=1)
        out.backward(seed)
        return out.data.copy(), xt.grad.copy(), wtt.grad.copy()

    with F.use_backend("native"):
        monkeypatch.setenv("REPRO_NN_THREADS", "1")
        single = run()
        monkeypatch.setenv("REPRO_NN_THREADS", "4")
        threaded = run()
    for a, b in zip(single, threaded):
        np.testing.assert_array_equal(a, b)
