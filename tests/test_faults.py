"""Unit contracts of :mod:`repro.faults` — the seeded fault-injection layer.

Pinned behaviours: the ``site=kind[:opt=..]`` spec grammar (including every
malformed-entry rejection), determinism of the per-site seeded streams (a
given (spec, seed) pair fires the same faults at the same ordinals on every
run), each fault kind's effect at a :func:`~repro.faults.fault_point`, and
the activation precedence (installed plan > ``REPRO_FAULTS`` environment,
with ``install(None)`` masking the environment and a malformed environment
spec warning exactly once).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultError, FaultPlan, FaultSpec, fault_point


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    """Each test controls the plan explicitly; start uninstalled + env-free."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    faults.uninstall()
    yield
    faults.uninstall()


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------

class TestSpecParse:
    def test_minimal_entry(self):
        spec = FaultSpec.parse("fleet.worker.exec=error")
        assert spec.site == "fleet.worker.exec"
        assert spec.kind == "error"
        assert spec.prob == 1.0
        assert spec.max_fires is None

    def test_every_option(self):
        spec = FaultSpec.parse("a.b=latency:p=0.25:ms=7.5:s=12:n=3")
        assert (spec.prob, spec.latency_ms, spec.hang_s, spec.max_fires) == \
            (0.25, 7.5, 12.0, 3)

    def test_plan_splits_entries_and_skips_blanks(self):
        plan = FaultPlan.parse("a=error; ;b=latency:ms=1;", seed=5)
        assert [s.site for s in plan.specs] == ["a", "b"]
        assert plan.seed == 5

    def test_glob_sites_match(self):
        plan = FaultPlan.parse("fleet.worker.*=error")
        assert plan.matching("fleet.worker.recv")
        assert plan.matching("fleet.worker.send")
        assert not plan.matching("transport.ring.write")

    @pytest.mark.parametrize("entry", [
        "no-kind-here",                    # missing '='
        "site=",                           # empty kind
        "=error",                          # empty site
        "site=explode",                    # unknown kind
        "site=error:p=1.5",                # prob out of range
        "site=error:bogus=1",              # unknown option key
        "site=latency:ms=fast",            # non-numeric option
    ])
    def test_malformed_entries_raise(self, entry):
        with pytest.raises(ValueError):
            FaultSpec.parse(entry)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

class TestDeterminism:
    SPEC = "a=error:p=0.5"

    def _fire_pattern(self, seed, n=64):
        plan = FaultPlan.parse(self.SPEC, seed=seed)
        pattern = []
        for _ in range(n):
            try:
                plan.apply("a")
                pattern.append(False)
            except FaultError:
                pattern.append(True)
        return pattern

    def test_same_seed_replays_exactly(self):
        assert self._fire_pattern(7) == self._fire_pattern(7)

    def test_seed_changes_the_stream(self):
        assert self._fire_pattern(7) != self._fire_pattern(8)

    def test_sites_have_independent_streams(self):
        plan = FaultPlan.parse("a=error:p=0.5;b=error:p=0.5", seed=0)
        a_fires, b_fires = [], []
        for _ in range(64):
            for site, fires in (("a", a_fires), ("b", b_fires)):
                try:
                    plan.apply(site)
                    fires.append(False)
                except FaultError:
                    fires.append(True)
        assert a_fires != b_fires

    def test_corruption_is_seeded(self):
        blob = bytes(range(64))
        one = FaultPlan.parse("a=corrupt", seed=3).apply("a", blob)
        two = FaultPlan.parse("a=corrupt", seed=3).apply("a", blob)
        assert one == two
        assert one != blob


# ---------------------------------------------------------------------------
# Fault kinds
# ---------------------------------------------------------------------------

class TestKinds:
    def test_error_raises_fault_error(self):
        plan = FaultPlan.parse("a=error")
        with pytest.raises(FaultError, match="'a'"):
            plan.apply("a")

    def test_latency_sleeps_the_configured_ms(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        FaultPlan.parse("a=latency:ms=40").apply("a")
        assert naps == [0.04]

    def test_hang_sleeps_the_configured_s(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        FaultPlan.parse("a=hang:s=17").apply("a")
        assert naps == [17.0]

    def test_corrupt_flips_exactly_one_byte(self):
        blob = bytes(64)
        out = FaultPlan.parse("a=corrupt").apply("a", blob)
        assert isinstance(out, bytes) and len(out) == len(blob)
        assert sum(x != y for x, y in zip(out, blob)) == 1
        assert blob == bytes(64), "input mutated in place"

    def test_corrupt_accepts_ndarray_payloads(self):
        payload = np.arange(16, dtype=np.float32)
        out = FaultPlan.parse("a=corrupt").apply("a", payload)
        assert isinstance(out, bytes)
        assert out != payload.tobytes()
        assert np.array_equal(payload, np.arange(16, dtype=np.float32))

    def test_corrupt_without_payload_is_a_no_op(self):
        assert FaultPlan.parse("a=corrupt").apply("a") is None

    def test_prob_zero_never_fires(self):
        plan = FaultPlan.parse("a=error:p=0")
        for _ in range(32):
            plan.apply("a")
        assert plan.fired["a"] == 0

    def test_max_fires_caps_the_site(self):
        plan = FaultPlan.parse("a=error:n=2")
        for _ in range(2):
            with pytest.raises(FaultError):
                plan.apply("a")
        plan.apply("a")                   # third hit: spent, passes through
        assert plan.fired["a"] == 2

    def test_kill_delivers_sigkill_to_self(self, monkeypatch):
        import signal

        kills = []
        monkeypatch.setattr(faults.os, "kill",
                            lambda pid, sig: kills.append((pid, sig)))
        FaultPlan.parse("a=kill").apply("a")
        assert kills == [(faults.os.getpid(), signal.SIGKILL)]

    def test_kill_respects_max_fires_and_prob(self, monkeypatch):
        kills = []
        monkeypatch.setattr(faults.os, "kill",
                            lambda pid, sig: kills.append(pid))
        plan = FaultPlan.parse("a=kill:n=1")
        for _ in range(3):
            plan.apply("a")
        assert len(kills) == 1


# ---------------------------------------------------------------------------
# Activation: fault_point, install, environment
# ---------------------------------------------------------------------------

class TestActivation:
    def test_fault_point_is_a_no_op_without_a_plan(self):
        payload = b"untouched"
        assert fault_point("anything", payload) is payload
        assert fault_point("anything") is None

    def test_installed_plan_scopes_to_the_with_block(self):
        with faults.installed(FaultPlan.parse("x=error")):
            with pytest.raises(FaultError):
                fault_point("x")
        fault_point("x")                  # uninstalled again

    def test_env_activates_and_is_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "env.site=error")
        assert faults.active_plan() is faults.active_plan()
        with pytest.raises(FaultError):
            fault_point("env.site")

    def test_env_seed_feeds_the_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seeded.site=error:p=0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "11")
        assert faults.active_plan().seed == 11

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "env.only=error")
        with faults.installed(FaultPlan.parse("prog.only=error")):
            fault_point("env.only")       # env masked by the installed plan
            with pytest.raises(FaultError):
                fault_point("prog.only")

    def test_install_none_masks_env_entirely(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "env.only=error")
        with faults.installed(None):
            assert faults.active_plan() is None
            fault_point("env.only")

    def test_malformed_env_warns_once_and_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "this is ; not a spec")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert faults.active_plan() is None
            fault_point("anywhere")       # must not warn again or crash
            assert faults.active_plan() is None
        spec_warnings = [w for w in caught
                         if "REPRO_FAULTS" in str(w.message)]
        assert len(spec_warnings) == 1
