"""Kill–resume chaos harness: a real SIGKILL mid-training, then resume.

The in-process fault matrix (``test_train_durability.py``) proves resume
logic against *simulated* crashes; this harness proves it against the real
thing.  A training subprocess (``tests/_train_driver.py``) is SIGKILLed by
the seeded ``kill`` fault kind at a fault-chosen batch — no Python unwind,
no atexit, no flushes — and a second invocation resumes from whatever the
atomic checkpoint ring retained.  The resumed run's weights, history and
held-out accuracy must equal the golden uninterrupted run **bit for bit**,
both when the kill lands mid-epoch (checkpoints exist) and when it lands on
the very first batch (nothing on disk yet, resume degenerates to a fresh
start).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import zlib
from pathlib import Path

import numpy as np
import pytest

import repro

DRIVER = Path(__file__).with_name("_train_driver.py")
SRC_ROOT = Path(repro.__file__).resolve().parents[1]

#: The driver trains 128 examples x batch 32 x 2 epochs = 8 batches.
TOTAL_BATCHES = 8
CKPT_EVERY = 2


def _first_fire(seed: int, prob: float, site: str = "train.batch") -> int:
    """Fire ordinal of the seeded fault stream (mirrors FaultPlan seeding)."""
    rng = np.random.default_rng((seed, zlib.crc32(site.encode("utf-8"))))
    for ordinal in range(1, 200):
        if float(rng.random()) < prob:
            return ordinal
    return -1


def _mid_run_kill_seed(prob: float = 0.35) -> int:
    """A fault seed whose first kill lands past the first checkpoint but
    before the end of the run (computed, not guessed, so the test cannot
    silently turn into the kill-never-fires case)."""
    for seed in range(100):
        if CKPT_EVERY < _first_fire(seed, prob) <= TOTAL_BATCHES:
            return seed
    raise AssertionError("no seed places the kill mid-run")


def _run_driver(out_dir: Path, fault_env=None, expect_kill=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_ROOT)] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    env["REPRO_CKPT_EVERY_STEPS"] = str(CKPT_EVERY)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULTS_SEED", None)
    env.update(fault_env or {})
    out_dir.mkdir(parents=True, exist_ok=True)
    proc = subprocess.run([sys.executable, str(DRIVER), str(out_dir)],
                          env=env, capture_output=True, text=True,
                          timeout=600)
    if expect_kill:
        assert proc.returncode == -signal.SIGKILL, (
            f"driver should have been SIGKILLed, got rc={proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        assert not (out_dir / "result.json").exists()
    else:
        assert proc.returncode == 0, (
            f"driver failed rc={proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
    return proc


def _outcome(out_dir: Path):
    with np.load(out_dir / "weights.npz") as npz:
        weights = {key: npz[key].copy() for key in npz.files}
    result = json.loads((out_dir / "result.json").read_text())
    return weights, result


def _assert_bit_identical(golden_dir: Path, resumed_dir: Path):
    g_weights, g_result = _outcome(golden_dir)
    r_weights, r_result = _outcome(resumed_dir)
    assert g_weights.keys() == r_weights.keys()
    for key in g_weights:
        assert np.array_equal(g_weights[key], r_weights[key]), key
    assert g_result == r_result


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("golden")
    _run_driver(out_dir)
    return out_dir


class TestKillResume:
    def test_sigkill_mid_epoch_resumes_bit_identical(self, golden, tmp_path):
        seed = _mid_run_kill_seed()
        _run_driver(tmp_path, expect_kill=True, fault_env={
            "REPRO_FAULTS": "train.batch=kill:p=0.35:n=1",
            "REPRO_FAULTS_SEED": str(seed),
        })
        # The atomic ring survived the SIGKILL: progress up to the last
        # checkpoint interval is on disk before the resume starts.
        surviving = sorted((tmp_path / "ckpt").glob("ckpt-*.pkl"))
        assert surviving, "kill landed after a checkpoint, ring must exist"
        _run_driver(tmp_path)             # resume, faults cleared
        _assert_bit_identical(golden, tmp_path)

    def test_sigkill_before_first_checkpoint_resumes_bit_identical(
            self, golden, tmp_path):
        # p=1 fires on the very first batch: nothing is on disk yet, so the
        # resume must degenerate to a bit-identical fresh start.
        _run_driver(tmp_path, expect_kill=True, fault_env={
            "REPRO_FAULTS": "train.batch=kill:n=1",
        })
        assert not list((tmp_path / "ckpt").glob("ckpt-*.pkl"))
        _run_driver(tmp_path)
        _assert_bit_identical(golden, tmp_path)
