"""Shared-memory tensor-ring transport contracts (`repro.serving.transport`).

The fleet's correctness rests on the ring never lying: every tensor read
back is bit-identical to what was written (or the reader gets
``RingDataError``), a full/oversized ring refuses rather than blocks, and
no shared-memory segment outlives ``close()``.
"""

import multiprocessing
import os
import pickle
import struct

import numpy as np
import pytest

from repro.serving.transport import (RingDataError, TensorRing, _HEADER,
                                     _TRAILER, roundtrip_equals_pickle)


def _overhead() -> int:
    return _HEADER.size + _TRAILER.size


# ---------------------------------------------------------------------------
# Round-trip identity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("array", [
    np.arange(24, dtype=np.float32).reshape(2, 3, 4),
    np.array([np.nan, np.inf, -np.inf, -0.0, 5e-324, 1.0], dtype=np.float64),
    np.arange(-4, 4, dtype=np.int64),
    np.zeros((0,), dtype=np.float32),
    np.random.default_rng(0).standard_normal((3, 16, 16)).astype(np.float32),
], ids=["f32-3d", "f64-specials", "int64", "empty", "image"])
def test_roundtrip_bit_identical_to_pickle(array):
    assert roundtrip_equals_pickle(array)


def test_roundtrip_non_contiguous_input():
    base = np.arange(64, dtype=np.float32).reshape(8, 8)
    sliced = base[::2, ::2]
    assert not sliced.flags["C_CONTIGUOUS"]
    ring = TensorRing.create(4096)
    try:
        descriptor = ring.write(7, sliced)
        assert descriptor is not None
        out = ring.read(descriptor, 7)
        np.testing.assert_array_equal(out, np.ascontiguousarray(sliced))
    finally:
        ring.close()


def test_read_returns_owning_copy():
    ring = TensorRing.create(4096)
    try:
        array = np.arange(8, dtype=np.float32)
        descriptor = ring.write(1, array)
        out = ring.read(descriptor, 1)
        out[0] = -1.0                     # writable, not a read-only view
        again = ring.read(descriptor, 1)
        assert again[0] == 0.0            # and detached from the segment
    finally:
        ring.close()


# ---------------------------------------------------------------------------
# Wraparound and capacity behaviour
# ---------------------------------------------------------------------------

def test_wraparound_many_cycles():
    """Frames crossing the physical end are split + reassembled losslessly."""
    frame_payload = 96
    capacity = (_overhead() + frame_payload) * 3 + 17  # deliberately ragged
    ring = TensorRing.create(capacity)
    try:
        for seq in range(200):
            array = np.full(frame_payload // 4, seq, dtype=np.int32)
            descriptor = ring.write(seq, array)
            assert descriptor is not None, f"unexpected full ring at {seq}"
            out = ring.read(descriptor, seq)
            np.testing.assert_array_equal(out, array)
            ring.free_to(descriptor[0] + descriptor[1])
        assert ring.head > capacity       # wrapped several times
        assert ring.used_bytes == 0
    finally:
        ring.close()


def test_full_ring_returns_none_then_recovers():
    payload = np.zeros(32, dtype=np.uint8)
    total = _overhead() + payload.nbytes
    ring = TensorRing.create(total * 2)
    try:
        d1 = ring.write(0, payload)
        d2 = ring.write(1, payload)
        assert d1 is not None and d2 is not None
        assert ring.write(2, payload) is None          # full, not blocking
        ring.free_to(d1[0] + d1[1])                    # reader consumed #0
        d3 = ring.write(2, payload)
        assert d3 is not None
        np.testing.assert_array_equal(ring.read(d3, 2), payload)
        np.testing.assert_array_equal(ring.read(d2, 1), payload)
    finally:
        ring.close()


def test_oversized_tensor_returns_none():
    ring = TensorRing.create(1024)
    try:
        big = np.zeros(2048, dtype=np.uint8)
        assert ring.write(0, big) is None
        # The refusal leaves the ring untouched and usable.
        small = np.arange(4, dtype=np.int32)
        descriptor = ring.write(1, small)
        np.testing.assert_array_equal(ring.read(descriptor, 1), small)
    finally:
        ring.close()


def test_tiny_capacity_rejected():
    with pytest.raises(ValueError):
        TensorRing.create(_overhead() - 1)


# ---------------------------------------------------------------------------
# Torn-write / corruption detection
# ---------------------------------------------------------------------------

def _corrupt_byte(ring, absolute_counter):
    offset = absolute_counter % ring.capacity
    ring._shm.buf[offset] ^= 0xFF


def test_corrupt_payload_raises():
    ring = TensorRing.create(4096)
    try:
        descriptor = ring.write(3, np.arange(16, dtype=np.float64))
        _corrupt_byte(ring, descriptor[0] + _HEADER.size)
        with pytest.raises(RingDataError, match="checksum"):
            ring.read(descriptor, 3)
    finally:
        ring.close()


def test_corrupt_magic_raises():
    ring = TensorRing.create(4096)
    try:
        descriptor = ring.write(3, np.arange(16, dtype=np.float64))
        _corrupt_byte(ring, descriptor[0])
        with pytest.raises(RingDataError, match="magic"):
            ring.read(descriptor, 3)
    finally:
        ring.close()


def test_torn_trailer_raises():
    ring = TensorRing.create(4096)
    try:
        array = np.arange(16, dtype=np.float64)
        descriptor = ring.write(3, array)
        _corrupt_byte(ring, descriptor[0] + descriptor[1] - _TRAILER.size)
        with pytest.raises(RingDataError, match="torn|trailer"):
            ring.read(descriptor, 3)
    finally:
        ring.close()


def test_wrong_seq_raises():
    """A stale descriptor (reused slot) is caught by the seq check."""
    ring = TensorRing.create(4096)
    try:
        descriptor = ring.write(3, np.arange(16, dtype=np.float64))
        with pytest.raises(RingDataError, match="seq"):
            ring.read(descriptor, 4)
    finally:
        ring.close()


def test_descriptor_length_mismatch_raises():
    ring = TensorRing.create(4096)
    try:
        start, total, dtype_str, shape = ring.write(
            3, np.arange(16, dtype=np.float64))
        with pytest.raises(RingDataError, match="length"):
            ring.read((start, total + 8, dtype_str, shape), 3)
    finally:
        ring.close()


# ---------------------------------------------------------------------------
# Lifecycle / leaks
# ---------------------------------------------------------------------------

def test_owner_close_unlinks_segment():
    ring = TensorRing.create(4096)
    name = ring.name
    ring.close()
    with pytest.raises(FileNotFoundError):
        TensorRing.attach(name, 4096)
    ring.close()                          # idempotent


def test_attached_close_keeps_segment():
    owner = TensorRing.create(4096)
    try:
        reader = TensorRing.attach(owner.name, 4096)
        reader.close()                    # non-owner: mapping only
        descriptor = owner.write(0, np.arange(4, dtype=np.int32))
        assert owner.read(descriptor, 0)[0] == 0
    finally:
        owner.close()
    with pytest.raises(FileNotFoundError):
        TensorRing.attach(owner.name, 4096)


def test_context_manager_closes():
    with TensorRing.create(4096) as ring:
        name = ring.name
    with pytest.raises(FileNotFoundError):
        TensorRing.attach(name, 4096)


# ---------------------------------------------------------------------------
# Cross-process (the fleet's actual topology: fork-inherited ring)
# ---------------------------------------------------------------------------

def _child_read(name, capacity, descriptor, seq, conn):
    ring = TensorRing.attach(name, capacity)
    try:
        out = ring.read(descriptor, seq)
        conn.send((out.dtype.str, out.shape, out.tobytes()))
    finally:
        ring.close()
        conn.close()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork-only transport")
def test_cross_process_read_bit_identical():
    ctx = multiprocessing.get_context("fork")
    array = np.random.default_rng(1).standard_normal((5, 7)).astype(np.float32)
    ring = TensorRing.create(4096)
    try:
        descriptor = ring.write(11, array)
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(target=_child_read,
                              args=(ring.name, ring.capacity, descriptor, 11,
                                    child_conn))
        process.start()
        child_conn.close()
        dtype_str, shape, raw = parent_conn.recv()
        process.join(timeout=30)
        assert raw == array.tobytes()
        assert (np.dtype(dtype_str), shape) == (array.dtype, array.shape)
        # pickle oracle: the bytes a pickle round-trip would produce
        assert raw == pickle.loads(pickle.dumps(array, protocol=5)).tobytes()
    finally:
        ring.close()
