"""Subprocess driver for the kill–resume chaos harness.

Runs one durable training session end-to-end and writes its observable
outcome — final weights, training history, held-out accuracy — next to the
checkpoint ring.  The chaos test launches this script three ways:

* golden: no faults, fresh directory — the uninterrupted reference run;
* killed: ``REPRO_FAULTS=train.batch=kill:...`` SIGKILLs the process at a
  fault-chosen batch (a real ``kill -9``: no unwind, no flushes);
* resumed: same directory, faults cleared — must reproduce the golden
  outcome bit-for-bit from whatever checkpoints survived the kill.

Everything is seeded and argument-free beyond the output directory, so two
driver invocations differ only in environment-injected faults.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

from repro.data import make_dataset
from repro.defense import Trainer, TrainingConfig, evaluate_accuracy
from repro.models import preact_resnet18


def main() -> None:
    out_dir = sys.argv[1]
    dataset = make_dataset("cifar10", train_size=128, test_size=48)
    model = preact_resnet18(num_classes=dataset.num_classes, width=8,
                            blocks_per_stage=(1, 1), seed=0)
    config = TrainingConfig(epochs=2, batch_size=32, lr=0.05, seed=17,
                            lr_milestones=(1,))
    trainer = Trainer(model, config)
    # resume=True is a no-op on an empty ring, so the same invocation serves
    # both the fresh golden run and the post-kill resume.
    history = trainer.fit(dataset.x_train, dataset.y_train, resume=True,
                          checkpoint=os.path.join(out_dir, "ckpt"))
    accuracy = evaluate_accuracy(model, dataset.x_test, dataset.y_test)
    np.savez(os.path.join(out_dir, "weights.npz"), **model.state_dict())
    with open(os.path.join(out_dir, "result.json"), "w") as fh:
        json.dump({
            "train_loss": history.train_loss,
            "train_accuracy": history.train_accuracy,
            "epochs_completed": history.epochs_completed,
            "eval_accuracy": accuracy,
        }, fh)


if __name__ == "__main__":
    main()
