"""Training-throughput benchmark: channels-last core vs reference kernels.

Runs identical RPS adversarial-training steps under both compute backends
and asserts the channels-last core is at least 1.5x faster.  The workload
uses a production-width model (base width 32): that is the regime the
channels-last GEMMs target — at the tiny bench-budget widths (channel counts
of 4-8) both backends sit on the same memory-bandwidth floor and the kernel
speedup compresses to ~1.2-1.4x (see ROADMAP, "NN compute core").

The measured wall times are recorded into ``BENCH_nn.json`` alongside the
figure/table benchmarks, so the perf trajectory of both backends is tracked
run over run.
"""

import time

import numpy as np
import pytest

from conftest import record_wall_time

from repro.core import RPSConfig, RPSTrainer
from repro.models import build_model
from repro.nn import functional as F
from repro.quantization import PrecisionSet

pytestmark = pytest.mark.slow      # trains (a few steps of) a wide model

#: The throughput gate: fast backend must beat the reference kernels by
#: at least this factor on the training workload below.
MIN_SPEEDUP = 1.5

PRECISIONS = PrecisionSet([3, 4, 6])
SCALE = 32          # base channel width; bench tables use 8
IMAGE = 16
BATCH = 64
STEPS = 2


def _train_steps(backend: str) -> float:
    """Seconds per RPS adversarial-training step under ``backend``."""
    rng = np.random.default_rng(0)
    x = rng.random((BATCH, 3, IMAGE, IMAGE), dtype=np.float32)
    y = rng.integers(0, 10, BATCH)
    with F.use_backend(backend):
        model = build_model("preact_resnet18", num_classes=10,
                            precisions=PRECISIONS, scale=SCALE, seed=0)
        config = RPSConfig(epochs=1, batch_size=BATCH, method="pgd",
                           attack_steps=3, precision_set=PRECISIONS, seed=0)
        trainer = RPSTrainer(model, config)
        trainer.train_batch(x, y)               # warm-up (caches, workspace)
        start = time.perf_counter()
        for _ in range(STEPS):
            trainer.train_batch(x, y)
        return (time.perf_counter() - start) / STEPS


def test_training_throughput_vs_reference(benchmark):
    reference = _train_steps("reference")
    fast = benchmark.pedantic(lambda: _train_steps("fast"),
                              rounds=1, iterations=1, warmup_rounds=0)
    record_wall_time("nn_train_step_reference", reference)
    record_wall_time("nn_train_step_fast", fast)
    speedup = reference / fast
    print(f"\nRPS training step (scale {SCALE}, batch {BATCH}): "
          f"reference {reference * 1e3:.0f} ms, fast {fast * 1e3:.0f} ms "
          f"-> {speedup:.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"channels-last core regressed: only {speedup:.2f}x over the "
        f"reference kernels (floor {MIN_SPEEDUP}x)")
