"""Training-throughput benchmarks: the three compute backends against
each other.

* ``fast`` vs ``reference`` — identical RPS adversarial-training steps at
  production width (base 32): the channels-last GEMM core must hold
  >= 1.5x over the original im2col/NCHW kernels.  At the tiny bench-budget
  widths (channel counts of 4-8) both sit on the same memory-bandwidth
  floor and the speedup compresses to ~1.2-1.4x (ROADMAP, "NN compute
  core").
* ``native`` vs ``fast`` — the regime the compiled direct-conv kernels
  exist for is exactly that bandwidth floor, so these gates run at *bench*
  width (scale 8): a 3x3-conv kernel microbench must hold >= 1.5x (the
  gather+GEMM pair it replaces was measured at ~58% of a pass) and the
  end-to-end RPS training step — the workload that dominates the fig11 /
  tab1 bench wall time — must hold >= 1.2x.  Skipped cleanly when no C
  compiler is available.

The measured wall times are recorded into ``BENCH_nn.json`` alongside the
figure/table benchmarks, so the perf trajectory of all backends is tracked
run over run.
"""

import time

import numpy as np
import pytest

from conftest import record_wall_time

from repro.core import RPSConfig, RPSTrainer
from repro.models import build_model
from repro.nn import functional as F
from repro.nn import native
from repro.nn.workspace import default_workspace
from repro.quantization import PrecisionSet

pytestmark = pytest.mark.slow      # trains (a few steps of) a wide model

#: The throughput gate: fast backend must beat the reference kernels by
#: at least this factor on the training workload below.
MIN_SPEEDUP = 1.5

#: Native-vs-fast gates at bench width (see module docstring).
NATIVE_KERNEL_MIN_SPEEDUP = 1.5
NATIVE_E2E_MIN_SPEEDUP = 1.2

PRECISIONS = PrecisionSet([3, 4, 6])
SCALE = 32          # base channel width; bench tables use 8
BENCH_SCALE = 8     # the fig11/tab1 bench-budget width
IMAGE = 16
BATCH = 64
STEPS = 2

requires_native = pytest.mark.skipif(
    not native.available(),
    reason="native kernels unavailable (no C compiler)")


def _train_steps(backend: str, scale: int = SCALE) -> float:
    """Seconds per RPS adversarial-training step under ``backend``."""
    rng = np.random.default_rng(0)
    x = rng.random((BATCH, 3, IMAGE, IMAGE), dtype=np.float32)
    y = rng.integers(0, 10, BATCH)
    with F.use_backend(backend):
        model = build_model("preact_resnet18", num_classes=10,
                            precisions=PRECISIONS, scale=scale, seed=0)
        config = RPSConfig(epochs=1, batch_size=BATCH, method="pgd",
                           attack_steps=3, precision_set=PRECISIONS, seed=0)
        trainer = RPSTrainer(model, config)
        trainer.train_batch(x, y)               # warm-up (caches, workspace)
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            for _ in range(STEPS):
                trainer.train_batch(x, y)
            best = min(best, (time.perf_counter() - start) / STEPS)
        return best


def test_training_throughput_vs_reference(benchmark):
    reference = _train_steps("reference")
    fast = benchmark.pedantic(lambda: _train_steps("fast"),
                              rounds=1, iterations=1, warmup_rounds=0)
    record_wall_time("nn_train_step_reference", reference)
    record_wall_time("nn_train_step_fast", fast)
    speedup = reference / fast
    print(f"\nRPS training step (scale {SCALE}, batch {BATCH}): "
          f"reference {reference * 1e3:.0f} ms, fast {fast * 1e3:.0f} ms "
          f"-> {speedup:.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"channels-last core regressed: only {speedup:.2f}x over the "
        f"reference kernels (floor {MIN_SPEEDUP}x)")


@requires_native
def test_native_conv_kernel_vs_fast(benchmark):
    """3x3 direct-conv microbench at bench width: the kernel the whole PR
    exists for.  Measures one forward (the same staging + conv the layers
    run) under both backends over identical inputs."""
    from repro.nn.module import Parameter
    from repro.nn.tensor import Tensor, no_grad

    rng = np.random.default_rng(0)
    c = BENCH_SCALE
    x = rng.normal(size=(BATCH, c, IMAGE, IMAGE)).astype(np.float32)
    weight = Parameter(rng.normal(size=(c, c, 3, 3)).astype(np.float32))
    ws = default_workspace()

    def forward_seconds(backend: str) -> float:
        with F.use_backend(backend), no_grad():
            xt = Tensor(x)
            for _ in range(3):                       # warm caches + arena
                F.conv2d(xt, weight, None, stride=1, padding=1, workspace=ws)
                ws.end_step()
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                for _ in range(20):
                    F.conv2d(xt, weight, None, stride=1, padding=1,
                             workspace=ws)
                    ws.end_step()
                best = min(best, (time.perf_counter() - start) / 20)
            return best

    fast = forward_seconds("fast")
    native_seconds = benchmark.pedantic(lambda: forward_seconds("native"),
                                        rounds=1, iterations=1,
                                        warmup_rounds=0)
    record_wall_time("nn_conv3x3_bench_width_fast", fast)
    record_wall_time("nn_conv3x3_bench_width_native", native_seconds)
    speedup = fast / native_seconds
    print(f"\n3x3 conv @ bench width (c={c}, batch {BATCH}): "
          f"fast {fast * 1e3:.3f} ms, native {native_seconds * 1e3:.3f} ms "
          f"-> {speedup:.2f}x")
    assert speedup >= NATIVE_KERNEL_MIN_SPEEDUP, (
        f"native direct-conv kernel regressed: only {speedup:.2f}x over the "
        f"fast gather+GEMM (floor {NATIVE_KERNEL_MIN_SPEEDUP}x)")


@requires_native
def test_native_training_throughput_vs_fast(benchmark):
    """End-to-end RPS training step at bench width — the workload that is
    ~85% of the fig11 wall time and dominates the tab1-4 benchmarks."""
    # Isolate from the production-width test above: start both backends
    # from the same (empty) arena instead of one full of scale-32 buffers.
    default_workspace().clear()
    # Interleave the measurements and keep per-backend minima: the ratio is
    # otherwise at the mercy of host-level drift (CPU frequency, allocator
    # state) between two long one-shot timings.
    fast = _train_steps("fast", scale=BENCH_SCALE)
    native_seconds = benchmark.pedantic(
        lambda: _train_steps("native", scale=BENCH_SCALE),
        rounds=1, iterations=1, warmup_rounds=0)
    fast = min(fast, _train_steps("fast", scale=BENCH_SCALE))
    native_seconds = min(native_seconds,
                         _train_steps("native", scale=BENCH_SCALE))
    record_wall_time("nn_train_step_bench_width_fast", fast)
    record_wall_time("nn_train_step_bench_width_native", native_seconds)
    speedup = fast / native_seconds
    print(f"\nRPS training step (bench scale {BENCH_SCALE}, batch {BATCH}): "
          f"fast {fast * 1e3:.0f} ms, native {native_seconds * 1e3:.0f} ms "
          f"-> {speedup:.2f}x")
    assert speedup >= NATIVE_E2E_MIN_SPEEDUP, (
        f"native backend end-to-end regressed: only {speedup:.2f}x over "
        f"fast at bench width (floor {NATIVE_E2E_MIN_SPEEDUP}x)")
