"""Benchmark for Fig. 11: instant robustness-efficiency trade-offs."""

import pytest

from conftest import BENCH_BUDGET, run_once

pytestmark = pytest.mark.slow      # trains an RPS model

from repro.experiments import format_table, run_tradeoff_experiment, tradeoff_rows


def test_fig11_instant_tradeoff(benchmark):
    curve = run_once(benchmark, lambda: run_tradeoff_experiment(
        "cifar10", network="wide_resnet32", budget=BENCH_BUDGET,
        caps=(None, 4)))
    rows = tradeoff_rows(curve)
    print("\nFig. 11 — instant robustness-efficiency trade-off "
          "(paper: shrinking the RPS set trades robust accuracy for energy "
          "efficiency at comparable natural accuracy)")
    print(format_table(rows))

    energies = [p.average_energy for p in curve.points]
    robustness = [p.robust_accuracy for p in curve.points]
    # Restricting the precision set must reduce average energy per inference.
    assert energies[0] > energies[-1]
    # And every operating point stays usable (above chance accuracy; the
    # WideResNet variant is heavily under-trained at the bench budget).
    assert all(r >= 0.0 for r in robustness)
    assert all(p.natural_accuracy > 0.10 for p in curve.points)
