"""Warm-cache acceptance benchmark for the persistent engine store.

Runs the Fig. 7 normalized-throughput grid in two *separate* Python
processes sharing one on-disk memo store: the first pays the full
dataflow-search + simulation cost and fills the store; the second starts
cold in memory but warm on disk.  The contract (ISSUE 2): the warm rerun is
at least 3x faster than the first fill and produces identical rows.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

#: Same reduced grid as benchmarks/test_fig7_fig8_fig9_accelerator_grid.py.
_SNIPPET = """
import json, time
from repro.experiments import normalized_throughput_table
from repro.accelerator.optimizer import OptimizerConfig

start = time.perf_counter()
rows = normalized_throughput_table(
    precisions=(2, 4, 8, 16),
    workloads=(("resnet18", "cifar10"), ("wide_resnet32", "cifar10"),
               ("resnet50", "imagenet"), ("alexnet", "imagenet")),
    optimizer_config=OptimizerConfig(population_size=10, total_cycles=2,
                                     seed=0),
    persist=True)
print(json.dumps({"seconds": time.perf_counter() - start, "rows": rows}))
"""


def _run_fig7_process(cache_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (os.pathsep + env["PYTHONPATH"]
                                 if env.get("PYTHONPATH") else "")
    env["REPRO_ENGINE_CACHE_DIR"] = cache_dir
    result = subprocess.run(
        [sys.executable, "-c", _SNIPPET], env=env, capture_output=True,
        text=True, timeout=600,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout.strip().splitlines()[-1])


def test_warm_disk_rerun_at_least_3x_faster(tmp_path):
    cold = _run_fig7_process(str(tmp_path))
    warm = _run_fig7_process(str(tmp_path))
    speedup = cold["seconds"] / max(warm["seconds"], 1e-9)
    print(f"\nFig. 7 grid: first fill {cold['seconds']:.2f}s, "
          f"disk-warm rerun {warm['seconds']:.2f}s ({speedup:.1f}x)")
    assert warm["rows"] == cold["rows"]     # warmth must not change results
    assert speedup >= 3.0
