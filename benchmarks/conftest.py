"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a reduced
("bench") budget so the full suite completes in tens of minutes on a laptop.
The printed tables are the artefacts to compare against EXPERIMENTS.md, which
records the paper's numbers next to representative measured runs.

Wall times of every benchmark run through :func:`run_once` are appended to
``BENCH_nn.json`` at the repository root (override the path with
``REPRO_BENCH_JSON``; set it to ``0`` to disable), so the perf trajectory of
the NN/attack stack is recorded run over run and can be uploaded as a CI
artifact.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.accelerator.optimizer import OptimizerConfig
from repro.experiments import ExperimentBudget

#: Budget used by the robustness benchmarks (training-based, the slow ones).
BENCH_BUDGET = ExperimentBudget(train_size=640, test_size=160, eval_size=32,
                                epochs=3, batch_size=64, model_scale=8,
                                attack_steps=3, eval_attack_steps=10, seed=0)

#: Evolutionary-search budget used by the accelerator benchmarks.
BENCH_OPTIMIZER = OptimizerConfig(population_size=10, total_cycles=2, seed=0)

#: Wall times recorded by run_once this session, keyed by benchmark name.
RECORDED_WALL_TIMES: Dict[str, float] = {}

#: Keep at most this many historical entries in BENCH_nn.json.
BENCH_HISTORY_LIMIT = 50


@pytest.fixture(scope="session")
def bench_budget() -> ExperimentBudget:
    return BENCH_BUDGET


@pytest.fixture(scope="session")
def bench_optimizer() -> OptimizerConfig:
    return BENCH_OPTIMIZER


def record_wall_time(name: str, seconds: float) -> None:
    """Record a benchmark wall time for the BENCH_nn.json trajectory."""
    RECORDED_WALL_TIMES[name] = round(float(seconds), 4)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    start = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    record_wall_time(benchmark.name, time.perf_counter() - start)
    return result


def _bench_json_path(session) -> Path | None:
    configured = os.environ.get("REPRO_BENCH_JSON", "")
    if configured == "0":
        return None
    if configured:
        return Path(configured)
    # Without an explicit path, record only for slow-tier runs (`-m slow`):
    # the fast regression tier and full tier-1 runs also route accelerator
    # benchmarks through run_once, and appending their timings on every
    # invocation would dirty the committed trajectory file.
    if session.config.option.markexpr != "slow":
        return None
    return Path(__file__).resolve().parent.parent / "BENCH_nn.json"


def pytest_sessionfinish(session, exitstatus):
    if not RECORDED_WALL_TIMES:
        return
    path = _bench_json_path(session)
    if path is None:
        return
    payload = {"schema": 1, "history": []}
    try:
        existing = json.loads(path.read_text())
        if isinstance(existing, dict) and existing.get("schema") == 1:
            payload = existing
    except (OSError, ValueError):
        pass
    payload.setdefault("history", []).append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "nn_backend": os.environ.get("REPRO_NN_BACKEND", "fast"),
        "results": dict(sorted(RECORDED_WALL_TIMES.items())),
    })
    payload["history"] = payload["history"][-BENCH_HISTORY_LIMIT:]
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass
