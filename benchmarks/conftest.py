"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a reduced
("bench") budget so the full suite completes in tens of minutes on a laptop.
The printed tables are the artefacts to compare against EXPERIMENTS.md, which
records the paper's numbers next to representative measured runs.
"""

from __future__ import annotations

import pytest

from repro.accelerator.optimizer import OptimizerConfig
from repro.experiments import ExperimentBudget

#: Budget used by the robustness benchmarks (training-based, the slow ones).
BENCH_BUDGET = ExperimentBudget(train_size=640, test_size=160, eval_size=32,
                                epochs=3, batch_size=64, model_scale=8,
                                attack_steps=3, eval_attack_steps=10, seed=0)

#: Evolutionary-search budget used by the accelerator benchmarks.
BENCH_OPTIMIZER = OptimizerConfig(population_size=10, total_cycles=2, seed=0)


@pytest.fixture(scope="session")
def bench_budget() -> ExperimentBudget:
    return BENCH_BUDGET


@pytest.fixture(scope="session")
def bench_optimizer() -> OptimizerConfig:
    return BENCH_OPTIMIZER


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
