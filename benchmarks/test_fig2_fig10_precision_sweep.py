"""Benchmarks for Fig. 2 and Fig. 10: throughput vs execution precision."""

from conftest import BENCH_OPTIMIZER, run_once

from repro.experiments import format_table, throughput_vs_precision

PRECISIONS = (1, 2, 3, 4, 6, 8, 12, 16)


def test_fig2_throughput_vs_precision(benchmark):
    """Fig. 2: Bit Fusion vs Stripes on ResNet-50/ImageNet across precisions."""
    rows = run_once(benchmark, lambda: throughput_vs_precision(
        network="resnet50", dataset="imagenet", precisions=PRECISIONS,
        designs=("BitFusion", "Stripes"), optimizer_config=BENCH_OPTIMIZER))
    print("\nFig. 2 — throughput (FPS) vs precision, ResNet-50/ImageNet")
    print(format_table(rows, float_format="{:.2f}"))
    by_precision = {row["precision"]: row for row in rows}
    # Paper: Bit Fusion wins below 8-bit, loses above 8-bit.
    assert by_precision[4]["BitFusion"] > by_precision[4]["Stripes"]
    assert by_precision[16]["Stripes"] > by_precision[16]["BitFusion"]
    # Stripes scales smoothly with precision.
    assert by_precision[4]["Stripes"] > by_precision[8]["Stripes"] > by_precision[16]["Stripes"]


def test_fig10_precision_sweep_with_ours(benchmark):
    """Fig. 10: the same sweep including the 2-in-1 design, on WRN-32/CIFAR-10."""
    rows = run_once(benchmark, lambda: throughput_vs_precision(
        network="wide_resnet32", dataset="cifar10", precisions=PRECISIONS,
        designs=("BitFusion", "Stripes", "2-in-1"),
        optimizer_config=BENCH_OPTIMIZER))
    print("\nFig. 10 — throughput (FPS) vs precision, WideResNet-32/CIFAR-10")
    print(format_table(rows, float_format="{:.2f}"))
    for row in rows:
        assert row["2-in-1"] > row["Stripes"]
        if row["precision"] >= 3:
            # At 1-2 bit the calibrated model puts ours and Bit Fusion near
            # parity (see EXPERIMENTS.md); from 3-bit up ours must win.
            assert row["2-in-1"] > row["BitFusion"]
