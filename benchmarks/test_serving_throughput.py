"""Serving throughput benchmark: compiled sessions vs the pre-refactor path.

Workload: a stream of mixed-precision inference requests against the deep
bottleneck model (ResNet-50 at bench width), the regime the paper's RPS
deployment targets.  Three measurements:

* **pre-refactor stream** — the deployment the repo could build before this
  refactor: each arriving request batch is served by the historical
  ``RPSInference.predict`` loop (``set_model_precision`` per precision
  group, eval forward through the live training modules).
* **compiled session stream** — the same request stream and the *same
  per-request precision draws*, served through
  ``InferenceSession.predict_assigned`` with micro-batch windows coalesced
  across request batches (BN folding + pre-quantised, GEMM-repacked
  weights + ReLU fusion + per-precision batch coalescing).
* **async server burst** — steady-state throughput and p50/p99 latency of
  the actual ``repro.serving.RPSServer`` under a synthetic traffic burst.

The ``MIN_SPEEDUP`` gate asserts the compiled stream beats the pre-refactor
stream by >= 1.5x (measured ~2x on the 1-core dev box; the kernel-only
share — identical grouping, no coalescing — is recorded separately as
``serving_kernel_only_speedup``, ~1.4-1.55x).

All measurements append to ``BENCH_serving.json`` (same schema and
append-and-trim scheme as ``BENCH_nn.json``; ``REPRO_BENCH_JSON=0``
disables, and like the conftest recorder it only writes on slow-tier runs
so fast/tier-1 invocations never dirty the committed trajectory).
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict

import numpy as np
import pytest

from repro.inference import InferenceSession
from repro.models import build_model
from repro.nn import workspace as nn_workspace
from repro.nn.tensor import Tensor, no_grad
from repro.quantization import PrecisionSet, set_model_precision
from repro.serving import FleetConfig, FleetServer, RPSServer, ServingConfig

pytestmark = pytest.mark.slow      # repeated full-model inference rounds

MIN_SPEEDUP = 1.5
#: 1 -> 2 workers must scale serving throughput by this much on a >=2-core
#: box (gated only there; single-core machines record the numbers and skip).
FLEET_MIN_SCALING = 1.7
#: Four precisions so a 2-worker fleet shards traffic ~50/50 (with three,
#: one worker owns two thirds of the draws and perfect scaling caps at 1.5x).
FLEET_PRECISIONS = PrecisionSet([3, 4, 6, 8])

MODEL = "resnet50"
SCALE = 8
IMAGE = 16
PRECISIONS = PrecisionSet([3, 4, 6])
STREAM = 256            # requests per measured round
REQUEST_BATCH = 32      # pre-refactor deployments serve per-request batches
WINDOW = 128            # the session stream coalesces across request batches
ROUNDS = 6

BENCH_HISTORY_LIMIT = 50
_RESULTS: Dict[str, float] = {}


def _record(name: str, value: float) -> None:
    _RESULTS[name] = round(float(value), 4)


def _bench_path(config) -> Path | None:
    configured = os.environ.get("REPRO_BENCH_JSON", "")
    if configured == "0":
        return None
    if configured:
        # Shared override: keep the serving trajectory next to it.
        return Path(configured).with_name("BENCH_serving.json")
    if config.option.markexpr != "slow":
        return None
    return Path(__file__).resolve().parent.parent / "BENCH_serving.json"


@pytest.fixture(scope="module", autouse=True)
def _flush_results(request):
    yield
    path = _bench_path(request.config)
    if path is None or not _RESULTS:
        return
    payload = {"schema": 1, "history": []}
    try:
        existing = json.loads(path.read_text())
        if isinstance(existing, dict) and existing.get("schema") == 1:
            payload = existing
    except (OSError, ValueError):
        pass
    payload.setdefault("history", []).append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "model": f"{MODEL}@scale{SCALE}",
        "results": dict(sorted(_RESULTS.items())),
    })
    payload["history"] = payload["history"][-BENCH_HISTORY_LIMIT:]
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    model = build_model(MODEL, num_classes=10, precisions=PRECISIONS,
                        scale=SCALE, seed=0)
    model.eval()
    x = rng.random((STREAM, 3, IMAGE, IMAGE)).astype(np.float32)
    draws = rng.integers(0, len(PRECISIONS), STREAM)
    return model, x, draws


def _legacy_stream_round(model, x, draws) -> np.ndarray:
    """The pre-refactor deployment: per-request batches, live-module eval."""
    out = np.empty(len(x), dtype=np.int64)
    for start in range(0, len(x), REQUEST_BATCH):
        indices = np.arange(start, min(start + REQUEST_BATCH, len(x)))
        batch_draws = draws[indices]
        for key, precision in enumerate(PRECISIONS):
            selected = indices[batch_draws == key]
            if selected.size == 0:
                continue
            set_model_precision(model, precision)
            with no_grad():
                logits = model(Tensor(x[selected]))
            out[selected] = logits.data.argmax(axis=1)
            del logits
            nn_workspace.end_step()
    return out


def _session_stream_round(session, x, assignments,
                          window: int = WINDOW) -> np.ndarray:
    """The compiled path: coalesced windows through per-precision plans."""
    out = np.empty(len(x), dtype=np.int64)
    for start in range(0, len(x), window):
        stop = min(start + window, len(x))
        out[start:stop] = session.predict_assigned(x[start:stop],
                                                   assignments[start:stop])
    return out


def _time_rounds(fn, rounds=ROUNDS) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def test_mixed_precision_stream_speedup(workload):
    model, x, draws = workload
    assignments = [PRECISIONS[i] for i in draws]
    session = InferenceSession(model, fold_bn=True)

    _legacy_stream_round(model, x, draws)            # warm quant caches
    _session_stream_round(session, x, assignments)   # warm compiled plans

    legacy = _time_rounds(lambda: _legacy_stream_round(model, x, draws))
    compiled = _time_rounds(
        lambda: _session_stream_round(session, x, assignments))

    # Kernel-only share: identical request-batch grouping, no coalescing —
    # isolates BN folding + precompiled weights from the batching win.
    kernel_only = _time_rounds(lambda: _session_stream_round(
        session, x, assignments, window=REQUEST_BATCH))

    speedup = legacy / compiled
    _record("serving_stream_legacy_s", legacy)
    _record("serving_stream_session_s", compiled)
    _record("serving_stream_speedup", speedup)
    _record("serving_kernel_only_speedup", legacy / kernel_only)
    _record("serving_stream_throughput_rps", STREAM / compiled)
    print(f"\nmixed-precision stream ({MODEL}@scale{SCALE}, {STREAM} reqs): "
          f"legacy {legacy * 1e3:.0f} ms, session {compiled * 1e3:.0f} ms "
          f"-> {speedup:.2f}x (kernel-only {legacy / kernel_only:.2f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"compiled serving path regressed: only {speedup:.2f}x over the "
        f"pre-refactor stream (floor {MIN_SPEEDUP}x)")


def test_async_server_traffic_burst(workload):
    model, x, _ = workload
    session = InferenceSession(model, fold_bn=True)
    requests = [x[i] for i in range(STREAM)]

    async def burst():
        server = RPSServer(model, PRECISIONS,
                           ServingConfig(max_batch=WINDOW, max_delay_ms=2.0,
                                         seed=0),
                           session=session)
        async with server:
            await server.submit_many(requests)     # warm plans
            await server.submit_many(requests)
        return server.stats()

    stats = asyncio.run(burst())
    assert stats["completed"] == 2 * STREAM
    assert stats["mean_batch_size"] > 1.0
    assert stats["latency_p99_ms"] is not None
    _record("serving_async_throughput_rps", stats["throughput_rps"])
    _record("serving_async_p50_ms", stats["latency_p50_ms"])
    _record("serving_async_p99_ms", stats["latency_p99_ms"])
    _record("serving_async_mean_batch", stats["mean_batch_size"])
    print(f"\nasync server burst: {stats['throughput_rps']:.0f} req/s, "
          f"p50 {stats['latency_p50_ms']:.1f} ms, "
          f"p99 {stats['latency_p99_ms']:.1f} ms, "
          f"mean batch {stats['mean_batch_size']:.1f}")


def _fleet_throughput(model, requests, workers: int,
                      measured_rounds: int = 3) -> float:
    """Best-round steady-state requests/second of an N-worker fleet."""
    fleet = FleetServer(model, FLEET_PRECISIONS,
                        FleetConfig(workers=workers, max_batch=WINDOW,
                                    max_delay_ms=0.0, seed=0,
                                    input_shape=(3, IMAGE, IMAGE)))
    fleet.start()

    def round_trip():
        futures = [fleet.submit(x) for x in requests]
        fleet.flush()                   # count-cut mode: explicit barrier
        for future in futures:
            future.result(timeout=600)

    try:
        round_trip()    # warm: compiled plans + quant caches per worker
        best = float("inf")
        for _ in range(measured_rounds):
            start = time.perf_counter()
            round_trip()
            best = min(best, time.perf_counter() - start)
    finally:
        fleet.close()
    assert fleet.stats()["failed"] == 0
    return len(requests) / best


def test_fleet_worker_scaling(workload):
    """The workers axis of BENCH_serving.json: fleet throughput at 1 and 2
    workers, gated on >= FLEET_MIN_SCALING on multi-core machines."""
    model, x, _ = workload
    requests = [x[i] for i in range(STREAM)]

    rps = {workers: _fleet_throughput(model, requests, workers)
           for workers in (1, 2)}
    scaling = rps[2] / rps[1]
    _record("fleet_throughput_rps_workers1", rps[1])
    _record("fleet_throughput_rps_workers2", rps[2])
    _record("fleet_scaling_workers_1_to_2", scaling)
    _record("fleet_bench_cores", float(os.cpu_count() or 1))
    print(f"\nfleet scaling: workers=1 {rps[1]:.0f} req/s, "
          f"workers=2 {rps[2]:.0f} req/s -> {scaling:.2f}x "
          f"({os.cpu_count()} core(s))")

    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core machine: scaling gate needs >= 2 cores "
                    "(numbers recorded above)")
    assert scaling >= FLEET_MIN_SCALING, (
        f"fleet scaling regressed: 1 -> 2 workers only {scaling:.2f}x "
        f"(floor {FLEET_MIN_SCALING}x)")
