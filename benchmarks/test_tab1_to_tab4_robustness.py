"""Benchmarks for Tabs. 1-4: RPS vs full-precision adversarial training.

Each benchmark trains one representative (network, method) pair with and
without RPS at the bench budget and prints the table rows.  The reproduction
claim checked here is the paper's headline: adding RPS on top of adversarial
training improves robust accuracy under PGD while natural accuracy stays in
the same range.
"""

import pytest

from conftest import BENCH_BUDGET, run_once

from repro.experiments import evaluate_robustness_table, format_table

pytestmark = pytest.mark.slow      # each benchmark trains two models


def _rows_and_gain(dataset, network, method, attack_steps=(20,)):
    rows = evaluate_robustness_table(
        dataset, networks=(network,), methods=(method,), budget=BENCH_BUDGET,
        attack_steps=attack_steps)
    baseline, rps = rows
    key = f"PGD-{attack_steps[0]}"
    gain = rps.attacks[key] - baseline.attacks[key]
    return rows, gain


def test_tab1_cifar10(benchmark):
    rows, gain = run_once(benchmark, lambda: _rows_and_gain(
        "cifar10", "preact_resnet18", "pgd", attack_steps=(20,)))
    print("\nTab. 1 — CIFAR-10, PreActResNet-18, PGD-7 adversarial training "
          "(paper: 51.2% -> 65.2% under PGD-20; PGD-100 tracks PGD-20 closely)")
    print(format_table([r.as_dict() for r in rows]))
    assert gain > 0.0             # RPS improves robust accuracy


def test_tab2_cifar100(benchmark):
    rows, gain = run_once(benchmark, lambda: _rows_and_gain(
        "cifar100", "preact_resnet18", "pgd"))
    print("\nTab. 2 — CIFAR-100, PreActResNet-18, PGD-7 adversarial training "
          "(paper: 28.0% -> 41.7% under PGD-20)")
    print(format_table([r.as_dict() for r in rows]))
    # At the bench budget the gain is noisy on the 20-class dataset; require
    # RPS to be at least competitive (the full budget reproduces a clear
    # gain).  The 32-example eval set quantises accuracy in 3.1pp steps, so
    # the guard allows +/- 3 examples of binomial noise around parity.
    assert gain > -0.10


def test_tab3_svhn(benchmark):
    rows, gain = run_once(benchmark, lambda: _rows_and_gain(
        "svhn", "preact_resnet18", "fgsm_rs"))
    print("\nTab. 3 — SVHN, PreActResNet-18, FGSM-RS adversarial training "
          "(paper: 44.6% -> 53.5% under PGD-20)")
    print(format_table([r.as_dict() for r in rows]))
    assert gain > -0.05


def test_tab4_imagenet(benchmark):
    from repro.experiments import ExperimentBudget

    # ResNet-50 on the 32x32 ImageNet substitute is the heaviest training
    # benchmark; shrink it further so the whole suite stays laptop-friendly.
    budget = ExperimentBudget(train_size=384, test_size=96, eval_size=32,
                              epochs=2, batch_size=64, model_scale=6,
                              attack_steps=1, eval_attack_steps=10, seed=0)
    rows = run_once(benchmark, lambda: evaluate_robustness_table(
        "imagenet", networks=("resnet50",), methods=("fgsm_rs",),
        budget=budget, attack_steps=(10,)))
    baseline, rps = rows
    gain = rps.attacks["PGD-10"] - baseline.attacks["PGD-10"]
    print("\nTab. 4 — ImageNet, ResNet-50, FGSM-RS adversarial training "
          "(paper: 30.3% -> 37.9% under PGD-10)")
    print(format_table([r.as_dict() for r in rows]))
    assert gain > -0.10           # at bench scale: at least comparable robustness
