"""Benchmarks for Tab. 5 (stronger attacks), Tab. 6 (adaptive E-PGD attack)
and Fig. 1 (transferability of attacks between precisions)."""

import pytest

from conftest import BENCH_BUDGET, run_once

pytestmark = pytest.mark.slow      # trains RPS / baseline models

from repro.experiments import (
    evaluate_adaptive_attack,
    evaluate_strong_attacks,
    format_table,
    run_transferability_study,
)


def test_tab5_strong_attacks(benchmark):
    rows = run_once(benchmark, lambda: evaluate_strong_attacks(
        "cifar10", network="preact_resnet18", method="pgd",
        budget=BENCH_BUDGET, epsilons=(16.0,)))
    print("\nTab. 5 — stronger attacks on CIFAR-10 "
          "(paper: RPS gains 6.9-9.1pp AutoAttack, 10.0-18.9pp CW-Inf, "
          "5.0-24.5pp Bandits)")
    print(format_table(rows))
    # RPS should not collapse under any strong attack at the bench budget; the
    # paper-scale gains are recorded in EXPERIMENTS.md.
    gains = [row["improvement (pp)"] for row in rows]
    assert len(gains) == 3
    assert all(gain > -25.0 for gain in gains)


def test_tab6_adaptive_epgd(benchmark):
    rows = run_once(benchmark, lambda: evaluate_adaptive_attack(
        "cifar10", network="preact_resnet18", budget=BENCH_BUDGET,
        attack_steps=(10,)))
    print("\nTab. 6 — adaptive E-PGD attack on CIFAR-10 "
          "(paper: RPS keeps a >8.9pp advantage over PGD-7 training)")
    print(format_table(rows))
    assert rows[0]["PGD-7+RPS (%)"] > 0.0


def test_fig1_transferability(benchmark):
    panels = run_once(benchmark, lambda: run_transferability_study(
        "cifar10", network="preact_resnet18", budget=BENCH_BUDGET,
        panels=({"label": "(c)", "training": "pgd", "attack": "pgd",
                 "rps": False},
                {"label": "(d)", "training": "pgd", "attack": "pgd",
                 "rps": True})))
    print("\nFig. 1 — attack transferability between precisions "
          "(paper: transferred attacks leave higher robust accuracy than "
          "matched-precision attacks; RPS training widens the gap)")
    print(format_table([p.as_dict() for p in panels]))
    for panel in panels:
        print(f"panel {panel.label} matrix (attack precision x inference precision):")
        print(panel.result.matrix.round(3))
    rps_panel = next(p for p in panels if p.rps_trained)
    assert rps_panel.result.transfer_gap() > 0.0
