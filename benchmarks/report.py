"""Wall-time trajectory report across every benchmark history file.

``BENCH_nn.json`` (NN / attack / figure benchmarks) and
``BENCH_serving.json`` (serving throughput) each accumulate one history
entry per slow-tier run.  This module merges them into a single trajectory
table — one row per benchmark, one column per recorded run — so the perf
history of the whole stack is readable in one place.  CI prints it after
the slow tier; locally::

    python benchmarks/report.py [BENCH_nn.json BENCH_serving.json ...]

A missing, blank or corrupt history file degrades to an explicit
``(no data yet)`` row — the report never silently renders nothing.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["load_history", "merge_histories", "format_trajectory",
           "print_trajectory"]

#: Default history files, relative to the repository root.
DEFAULT_FILES = ("BENCH_nn.json", "BENCH_serving.json")

#: Show at most this many most-recent runs as columns.
MAX_COLUMNS = 6


def load_history(path: Path) -> Optional[List[dict]]:
    """The ``history`` list of one trajectory file, or None when unusable.

    Unusable covers: file missing, unreadable, empty/blank, malformed JSON,
    wrong schema, or an empty history list — every case a fresh clone or a
    half-written artifact can produce.
    """
    try:
        text = path.read_text()
    except OSError:
        return None
    if not text.strip():
        return None
    try:
        payload = json.loads(text)
    except ValueError:
        return None
    if not isinstance(payload, dict) or payload.get("schema") != 1:
        return None
    history = payload.get("history")
    if not isinstance(history, list) or not history:
        return None
    return history


def merge_histories(paths: Sequence[Path]
                    ) -> Tuple[List[str], Dict[str, List[Optional[float]]],
                               List[str]]:
    """Merge trajectory files into one (columns, rows, empty-sources) table.

    Returns ``(run_labels, rows, missing)``: ``run_labels`` are the column
    headers (timestamp of each recorded run, oldest first, capped at
    MAX_COLUMNS per source file); ``rows`` maps benchmark name to one wall
    time (or None) per column; ``missing`` lists sources that contributed
    no data.  Runs of *different* files are distinct columns — nn and
    serving benchmarks are recorded by different sessions, so aligning
    them on timestamps would fabricate correlations.
    """
    run_labels: List[str] = []
    rows: Dict[str, List[Optional[float]]] = {}
    missing: List[str] = []

    for path in paths:
        history = load_history(path)
        if history is None:
            missing.append(path.name)
            continue
        for entry in history[-MAX_COLUMNS:]:
            results = entry.get("results")
            if not isinstance(results, dict) or not results:
                continue
            label = str(entry.get("timestamp", "?"))[:16]
            column = len(run_labels)
            run_labels.append(label)
            for name, seconds in sorted(results.items()):
                row = rows.setdefault(name, [])
                row.extend([None] * (column - len(row)))
                row.append(float(seconds))

    width = len(run_labels)
    for row in rows.values():
        row.extend([None] * (width - len(row)))
    return run_labels, rows, missing


def format_trajectory(paths: Sequence[Path]) -> str:
    """The merged trajectory as a printable table."""
    run_labels, rows, missing = merge_histories(paths)
    lines = ["benchmark wall-time trajectory (seconds; columns are recorded "
             "runs, oldest first)", ""]

    if rows:
        name_width = max(len(name) for name in rows) + 2
        header = "".ljust(name_width) + "".join(
            label.rjust(18) for label in run_labels)
        lines.append(header)
        for name in sorted(rows):
            cells = "".join(
                (f"{value:.3f}".rjust(18) if value is not None
                 else "-".rjust(18))
                for value in rows[name])
            lines.append(name.ljust(name_width) + cells)
    for source in missing:
        lines.append(f"{source}: no data yet")
    if not rows and not missing:
        lines.append("(no history files given)")
    return "\n".join(lines)


def print_trajectory(paths: Optional[Sequence[Path]] = None) -> None:
    if not paths:
        root = Path(__file__).resolve().parent.parent
        paths = [root / name for name in DEFAULT_FILES]
    print(format_trajectory(list(paths)))


if __name__ == "__main__":
    arguments = [Path(arg) for arg in sys.argv[1:]]
    print_trajectory(arguments or None)
