"""Benchmarks for the DNNGuard comparison (Sec. 4.3.2) and the dataflow
optimizer ablation (Sec. 4.3.1)."""

from conftest import BENCH_OPTIMIZER, run_once

from repro.experiments import (
    dataflow_optimizer_ablation,
    dnnguard_comparison,
    format_table,
)


def test_dnnguard_comparison(benchmark):
    rows = run_once(benchmark, lambda: dnnguard_comparison(
        networks=(("alexnet", "imagenet"), ("vgg16", "imagenet"),
                  ("resnet50", "imagenet")),
        optimizer_config=BENCH_OPTIMIZER))
    print("\nSec. 4.3.2 — throughput/area vs DNNGuard "
          "(paper: 36.5x/17.9x AlexNet, 19.3x/9.5x VGG-16, 12.8x/6.4x ResNet-50)")
    print(format_table(rows))
    for row in rows:
        # Order-of-magnitude advantage, and the narrower 4~8-bit range is faster.
        assert row["speedup 4~8-bit"] > 5.0
        assert row["speedup 4~8-bit"] > row["speedup 4~16-bit"] > 2.0


def test_optimizer_ablation(benchmark):
    result = run_once(benchmark, lambda: dataflow_optimizer_ablation(
        network="resnet50", dataset="imagenet", precision=4, max_layers=12,
        optimizer_config=BENCH_OPTIMIZER))
    print("\nSec. 4.3.1 — evolutionary dataflow search vs default mapping "
          "(paper reports a further 1.28x on ResNet-50 at 4-bit)")
    print({k: round(v, 3) for k, v in result.items()})
    assert result["speedup"] >= 1.0
