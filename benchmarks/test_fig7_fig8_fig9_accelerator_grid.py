"""Benchmarks for Figs. 7-9: normalized throughput, normalized energy
efficiency and the energy breakdown across the six evaluated workloads."""

from conftest import BENCH_OPTIMIZER, run_once

from repro.experiments import (
    energy_breakdown_comparison,
    format_table,
    normalized_energy_table,
    normalized_throughput_table,
)

#: A representative subset of the paper's six workloads keeps the grid benches
#: inside a laptop-minute budget; the full list is FIG7_WORKLOADS.
WORKLOADS = (("resnet18", "cifar10"), ("wide_resnet32", "cifar10"),
             ("resnet50", "imagenet"), ("alexnet", "imagenet"))
PRECISIONS = (2, 4, 8, 16)


def test_fig7_normalized_throughput(benchmark):
    rows = run_once(benchmark, lambda: normalized_throughput_table(
        precisions=PRECISIONS, workloads=WORKLOADS,
        optimizer_config=BENCH_OPTIMIZER))
    print("\nFig. 7 — throughput normalized to Bit Fusion "
          "(paper: ours 1.41x-2.88x over Bit Fusion, 1.15x-4.59x over Stripes)")
    print(format_table(rows))
    for row in rows:
        assert row["2-in-1"] > 1.0          # ours beats Bit Fusion everywhere
        assert row["2-in-1"] > row["Stripes"] * 0.99
    at16 = [row for row in rows if row["precision"] == 16]
    assert any(row["Stripes"] > 1.0 for row in at16)   # Stripes wins at 16-bit


def test_fig8_normalized_energy_efficiency(benchmark):
    rows = run_once(benchmark, lambda: normalized_energy_table(
        precisions=(4, 8, 16), workloads=WORKLOADS,
        optimizer_config=BENCH_OPTIMIZER))
    print("\nFig. 8 — energy efficiency normalized to Bit Fusion "
          "(paper: ours 1.91x-7.58x over Bit Fusion, 1.25x-2.85x over Stripes)")
    print(format_table(rows))
    for row in rows:
        assert row["2-in-1"] > 1.0
        assert row["2-in-1"] > row["Stripes"]


def test_fig9_energy_breakdown(benchmark):
    rows = run_once(benchmark, lambda: energy_breakdown_comparison(
        precision=4, workloads=WORKLOADS, optimizer_config=BENCH_OPTIMIZER))
    print("\nFig. 9 — energy breakdown at 4-bit x 4-bit "
          "(paper: DRAM dominates; ours reduces MAC and data-movement energy)")
    print(format_table(rows))
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["design"]] = row
    for workload, designs in by_workload.items():
        ours = designs["2-in-1"]
        bitfusion = designs["BitFusion"]
        assert ours["total_energy"] < bitfusion["total_energy"]
        # The 2-in-1 unit cuts MAC energy, so the data-movement share of its
        # budget grows relative to Bit Fusion (the paper's Fig. 9 shape).
        assert ours["DRAM (%)"] > bitfusion["DRAM (%)"]
        assert ours["MAC (%)"] < bitfusion["MAC (%)"]
