"""Benchmarks for the MAC-unit-level results: Fig. 3 (area breakdown),
Fig. 4 (cycle counts) and the Sec. 3.2.3 synthesis ratios."""

from conftest import run_once

from repro.experiments import (
    format_table,
    mac_area_breakdown,
    mac_cycle_counts,
    mac_unit_comparison,
)


def test_fig3_area_breakdown(benchmark):
    rows = run_once(benchmark, mac_area_breakdown)
    print("\nFig. 3 — MAC unit area breakdown (paper: shift-add 60.9% / 67.0% / 39.7%)")
    print(format_table(rows))
    ours = next(r for r in rows if r["design"] == "ours")
    assert ours["shift_add (%)"] < 45.0


def test_fig4_mac_cycles(benchmark):
    counts = run_once(benchmark, lambda: mac_cycle_counts(8))
    print("\nFig. 4 — cycles per 8-bit x 8-bit MAC (paper: 8 / 1 / 4)")
    print(counts)
    assert counts == {"temporal": 8.0, "spatial": 1.0, "spatial_temporal": 4.0}


def test_mac_unit_ratios(benchmark):
    ratios = run_once(benchmark, lambda: mac_unit_comparison(8))
    print("\nSec. 3.2.3 — MAC unit vs Bit Fusion at 8-bit "
          "(paper: 2.3x throughput/area, 4.88x energy-eff/op)")
    print({k: round(v, 3) for k, v in ratios.items()})
    assert 2.0 < ratios["throughput_per_area_ratio"] < 2.6
    assert 4.4 < ratios["energy_efficiency_ratio"] < 5.4
