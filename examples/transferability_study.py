"""Reproduce the paper's Fig. 1 study: attacks transfer poorly across precisions.

Adversarially trains a PreActResNet-18 variant, then crosses every attack
precision with every inference precision and prints the robust-accuracy
matrices — once for plain PGD-7 training and once for PGD-7 + RPS training,
showing that RPS training widens the robustness gap between matched and
transferred precisions.

Run:  python examples/transferability_study.py
"""

import numpy as np

from repro.experiments import (
    ExperimentBudget,
    format_table,
    run_transferability_study,
)


def main() -> None:
    budget = ExperimentBudget.standard()
    print("== Fig. 1: transferability of adversarial attacks between precisions ==")
    print(f"(budget: {budget.train_size} training samples, {budget.epochs} epochs)")

    panels = run_transferability_study(
        "cifar10", network="preact_resnet18", budget=budget,
        panels=(
            {"label": "(a) FGSM-RS training, PGD attack", "training": "fgsm_rs",
             "attack": "pgd", "rps": False},
            {"label": "(c) PGD-7 training, PGD attack", "training": "pgd",
             "attack": "pgd", "rps": False},
            {"label": "(d) PGD-7 + RPS training, PGD attack", "training": "pgd",
             "attack": "pgd", "rps": True},
        ))

    for panel in panels:
        print(f"\n--- panel {panel.label} ---")
        print("robust accuracy [attack precision x inference precision]:")
        print(np.array2string(100 * panel.result.matrix, precision=1))
        print(f"diagonal mean {100 * panel.result.diagonal_mean():.1f}%  "
              f"off-diagonal mean {100 * panel.result.off_diagonal_mean():.1f}%  "
              f"transfer gap {100 * panel.result.transfer_gap():+.1f}pp")

    print("\nSummary:")
    print(format_table([p.as_dict() for p in panels]))


if __name__ == "__main__":
    main()
