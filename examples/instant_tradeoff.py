"""Reproduce Fig. 11: instant robustness-efficiency trade-offs at run time.

Trains one RPS model, then sweeps its run-time operating points — the full
precision set, restricted (lower-precision) sets, and a static lowest
precision — and reports robust accuracy together with the average energy and
throughput of serving each configuration on the 2-in-1 Accelerator.  No
retraining happens between operating points; that is the point of the paper's
Sec. 2.5.

Run:  python examples/instant_tradeoff.py
"""

from repro.experiments import (
    ExperimentBudget,
    format_table,
    run_tradeoff_experiment,
    tradeoff_rows,
)


def main() -> None:
    print("== Fig. 11: instant robustness-efficiency trade-off ==")
    budget = ExperimentBudget.standard()
    curve = run_tradeoff_experiment("cifar10", network="wide_resnet32",
                                    budget=budget, caps=(None, 4))
    print(format_table(tradeoff_rows(curve)))
    print("\nmonotone robustness-for-efficiency trade:",
          curve.is_monotone_tradeoff())
    print("Each row is the SAME trained model — only the inference precision "
          "set changes at run time.")


if __name__ == "__main__":
    main()
