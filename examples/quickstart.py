"""Quickstart: train an RPS-defended model and deploy it on the 2-in-1 Accelerator.

This walks the complete co-design loop of the paper in a few minutes on a CPU:

1. build a synthetic CIFAR-10-like dataset and a PreActResNet-18 variant with
   switchable batch normalisation for a candidate precision set;
2. run RPS training (Alg. 1) on top of PGD adversarial training;
3. evaluate natural accuracy and robust accuracy under PGD, comparing against
   a full-precision adversarially trained baseline;
4. report the hardware efficiency of serving the same precision set on the
   proposed spatial-temporal accelerator; and
5. deploy the trained model behind the compiled-session + async
   micro-batching serving stack on a synthetic traffic burst.

Run:  python examples/quickstart.py            # full walk-through
      python examples/quickstart.py --quick    # CI-sized smoke run
"""

import argparse
import asyncio

from repro.attacks import PGD, eps_from_255
from repro.core import (
    RPSConfig,
    RPSInference,
    RPSTrainer,
    TwoInOneSystem,
    robust_accuracy,
    rps_robust_accuracy,
)
from repro.data import make_dataset
from repro.defense import AdversarialConfig, AdversarialTrainer, evaluate_accuracy
from repro.models import preact_resnet18
from repro.quantization import PrecisionSet

EPSILON = eps_from_255(16)              # see DESIGN.md for the ε calibration
PRECISIONS = PrecisionSet([3, 4, 6])    # laptop-scale stand-in for 4~16-bit


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized budgets (smaller dataset, fewer epochs)")
    args = parser.parse_args()
    epochs = 1 if args.quick else 4
    train_size = 256 if args.quick else 1024

    print("== 2-in-1 Accelerator quickstart ==")
    dataset = make_dataset("cifar10", train_size=train_size, test_size=256)
    x_eval, y_eval = dataset.x_test[:128], dataset.y_test[:128]
    attack = PGD(EPSILON, steps=10)

    # ------------------------------------------------------------------
    # Baseline: PGD adversarial training at full precision.
    # ------------------------------------------------------------------
    print("\n[1/4] training the full-precision PGD baseline ...")
    baseline = preact_resnet18(num_classes=dataset.num_classes, width=8)
    AdversarialTrainer(baseline, AdversarialConfig(
        epochs=epochs, batch_size=64, lr=0.05, method="pgd", epsilon=EPSILON,
        attack_steps=3)).fit(dataset.x_train, dataset.y_train)
    base_natural = evaluate_accuracy(baseline, dataset.x_test, dataset.y_test)
    base_robust = robust_accuracy(baseline, attack, x_eval, y_eval)
    print(f"    baseline: natural {100 * base_natural:.1f}%  "
          f"robust (PGD-10) {100 * base_robust:.1f}%")

    # ------------------------------------------------------------------
    # RPS: the same adversarial training with a random precision switch.
    # ------------------------------------------------------------------
    print("\n[2/4] RPS training (random precision switch + switchable BN) ...")
    model = preact_resnet18(num_classes=dataset.num_classes, width=8,
                            precisions=PRECISIONS)
    RPSTrainer(model, RPSConfig(
        epochs=epochs, batch_size=64, lr=0.05, method="pgd", epsilon=EPSILON,
        attack_steps=3, precision_set=PRECISIONS)).fit(dataset.x_train,
                                                       dataset.y_train)
    inference = RPSInference(model, PRECISIONS)
    rps_natural = inference.accuracy(dataset.x_test, dataset.y_test)
    rps_robust = rps_robust_accuracy(model, attack, x_eval, y_eval, PRECISIONS)
    print(f"    RPS:      natural {100 * rps_natural:.1f}%  "
          f"robust (PGD-10) {100 * rps_robust:.1f}%")
    print(f"    robust-accuracy gain from RPS: "
          f"{100 * (rps_robust - base_robust):+.1f} percentage points")

    # ------------------------------------------------------------------
    # Hardware: deploy the same precision set on the 2-in-1 Accelerator.
    # ------------------------------------------------------------------
    print("\n[3/4] evaluating the accelerator side (ResNet-18 workload) ...")
    system = TwoInOneSystem(model, PRECISIONS, workload="resnet18",
                            workload_dataset="cifar10")
    report = system.report(x_eval, y_eval)
    print(f"    average throughput under RPS: {report.average_fps:.1f} FPS")
    print(f"    average energy per inference: {report.average_energy:.3e} (arb. units)")

    # ------------------------------------------------------------------
    # The evaluation engine: batched sweeps with a shared result cache.
    # ------------------------------------------------------------------
    # Every accelerator owns an `engine` that evaluates a whole
    # (layers x precisions) grid in one vectorized pass and memoises each
    # cell by (configuration, layer shape, precision).  Repeated sweeps —
    # figure tables, trade-off curves, optimizer fitness loops — become
    # cache hits, and identical accelerator configurations share one store.
    from repro.accelerator import TwoInOneAccelerator, network_layers

    accelerator = TwoInOneAccelerator()
    layers = network_layers("resnet18", "cifar10")
    grid = accelerator.evaluate_grid(layers, [3, 4, 6])
    for precision, fps in zip(grid.precisions, grid.throughput_fps()):
        print(f"    engine grid: {precision} -> {fps:.1f} FPS")
    print(f"    engine cache: {accelerator.engine.cache_info()}")

    # ------------------------------------------------------------------
    # Warm cache: persist the memo to disk so the *next* run starts hot.
    # ------------------------------------------------------------------
    # `persist=True` (or exporting REPRO_ENGINE_PERSIST=1) backs the memo
    # with an on-disk store keyed by (cache-schema version, model-constants
    # digest, accelerator fingerprint, layer shape, precision).  A second
    # process evaluating the same grid then loads every cell instead of
    # re-running the dataflow search — CI keeps this store in its cache so
    # the figure benchmarks run warm.  `workers=N` additionally shards any
    # cold cells across worker processes; both knobs are bit-identical to
    # the plain path.  The default store lives under ~/.cache/repro/engine
    # (override with REPRO_ENGINE_CACHE_DIR).
    import tempfile

    from repro.accelerator import EvaluationEngine

    with tempfile.TemporaryDirectory() as cache_dir:
        accelerator.evaluate_grid(layers, [3, 4, 6], persist=True,
                                  cache_dir=cache_dir)        # writes store
        EvaluationEngine.reset_shared_stores()  # simulate a cold process
        rerun = TwoInOneAccelerator()
        rerun.evaluate_grid(layers, [3, 4, 6], persist=True,
                            cache_dir=cache_dir)              # reads store
        info = rerun.engine.cache_info()
        print(f"    warm-cache rerun: {info['disk_cells_loaded']} cells "
              f"loaded from disk, {info['misses']} re-simulated")
    # ------------------------------------------------------------------
    # Training throughput: the channels-last NN compute core.
    # ------------------------------------------------------------------
    # All of the training and attack math above ran on the channels-last
    # (NHWC) compute core: convolutions take zero-copy as_strided window
    # views and run as one large BLAS GEMM per layer, pooling reduces the
    # same window views directly, conv input gradients are one transposed-
    # convolution GEMM, and all large scratch comes from a reusable
    # workspace arena so steady-state training does no large allocations.
    # Quantised weights (and their GEMM repacks) are cached per
    # (precision, weight version), so attack inner loops and eval sweeps
    # re-quantise nothing, and multi-restart PGD/E-PGD folds its restarts
    # into the batch dimension (one forward/backward per step).
    #
    # Knobs (environment variables):
    #   REPRO_NN_BACKEND=fast|reference   compute backend ("reference" is
    #                                     the original im2col/NCHW path,
    #                                     kept as the parity oracle)
    #   REPRO_NN_WORKSPACE_MB=256         workspace arena cap (0 disables)
    #   REPRO_NN_QUANT_CACHE=1            quantised-weight cache (0 disables)
    #   REPRO_NN_BATCHED_RESTARTS=1       batched attack restarts (0 =
    #                                     sequential per-restart loop)
    #
    # benchmarks/test_nn_throughput.py gates the speedup (>= 1.5x over the
    # reference backend at production width) and benchmarks append wall
    # times to BENCH_nn.json, the perf trajectory artifact.
    from repro.nn import functional as F
    from repro.nn.workspace import default_workspace

    ws = default_workspace()
    print(f"\n    nn backend: {F.get_backend()}  workspace: "
          f"{ws.hits} buffer reuses, {ws.misses} allocations")

    # ------------------------------------------------------------------
    # Serving: compiled inference sessions + the async micro-batching server.
    # ------------------------------------------------------------------
    # Deployment-side inference never touches the training modules: an
    # InferenceSession compiles one plan per precision (eval-mode batch norm
    # folded into the conv weights, weights pre-quantised and GEMM-repacked,
    # ReLU fused into the producing kernel) and RPSServer coalesces incoming
    # single-image requests into per-precision micro-batches executed
    # through those plans.  The precision set can be hot-swapped under live
    # traffic from the accelerator's cached rps_average_metrics — the
    # instant robustness-efficiency trade-off of Sec. 2.5, driven by
    # measured hardware numbers.
    #
    # Knobs: REPRO_INFER_FOLD_BN (plan BN folding), REPRO_SERVING_MAX_BATCH
    # and REPRO_SERVING_MAX_DELAY_MS (dispatcher window); see repro.config.
    print("\n[4/4] serving the RPS model (async micro-batching) ...")
    from repro.serving import RPSServer, ServingConfig

    traffic = [dataset.x_test[i] for i in range(128)]

    async def serve_burst() -> dict:
        server = RPSServer(model, PRECISIONS,
                           ServingConfig(max_batch=32, max_delay_ms=2.0,
                                         seed=0))
        async with server:
            await server.submit_many(traffic)          # warm + serve burst
            # Re-schedule the serving precision set from accelerator
            # metrics (cache hits via the evaluation engine), then keep
            # serving under the swapped set.
            chosen, _ = server.apply_precision_schedule(
                accelerator, layers, caps=(None, 4), objective="energy")
            print(f"    scheduler picked cap={chosen.cap} "
                  f"-> precisions {chosen.precision_set.keys} "
                  f"({chosen.average_fps:.0f} FPS, "
                  f"energy {chosen.average_energy:.2e})")
            await server.submit_many(traffic[:32])
        return server.stats()

    stats = asyncio.run(serve_burst())
    print(f"    served {stats['completed']} requests at "
          f"{stats['throughput_rps']:.0f} req/s  "
          f"(p50 {stats['latency_p50_ms']:.1f} ms, "
          f"p99 {stats['latency_p99_ms']:.1f} ms, "
          f"mean micro-batch {stats['mean_batch_size']:.1f})")
    print(f"    precision mix: {stats['precision_counts']}")

    print("\nDone.  See benchmarks/ for the per-table/figure reproductions.")


if __name__ == "__main__":
    main()
