"""Explore the accelerator side: MAC units, dataflow search and baselines.

This example exercises the hardware half of the reproduction without any
model training:

1. compares the three MAC-unit designs at the unit level (Fig. 3 / Fig. 4);
2. sweeps execution precision for Bit Fusion, Stripes and the 2-in-1 design
   on a ResNet-50 workload (Figs. 2 / 10);
3. runs the evolutionary dataflow optimizer (Alg. 2) on a single layer and
   shows the mapping it found; and
4. runs the micro-architecture search mode under an area budget.

Run:  python examples/accelerator_design_space.py
"""

from repro.accelerator import (
    COMPUTE_AREA_BUDGET,
    SpatialTemporalMAC,
    TwoInOneAccelerator,
    network_layers,
)
from repro.accelerator.optimizer import (
    EvolutionaryDataflowOptimizer,
    MicroArchitectureSearch,
    OptimizerConfig,
)
from repro.experiments import (
    format_table,
    mac_area_breakdown,
    mac_cycle_counts,
    mac_unit_comparison,
    throughput_vs_precision,
)


def main() -> None:
    print("== MAC-unit level (Figs. 3 and 4) ==")
    print(format_table(mac_area_breakdown()))
    print("cycles per 8-bit MAC:", mac_cycle_counts(8))
    print("vs Bit Fusion at 8-bit:",
          {k: round(v, 2) for k, v in mac_unit_comparison(8).items()})

    print("\n== Throughput vs precision, ResNet-50/ImageNet (Figs. 2 / 10) ==")
    rows = throughput_vs_precision(
        network="resnet50", dataset="imagenet",
        precisions=(2, 4, 6, 8, 12, 16),
        optimizer_config=OptimizerConfig(population_size=10, total_cycles=2))
    print(format_table(rows))

    print("\n== Evolutionary dataflow search on one ResNet-50 layer (Alg. 2) ==")
    accelerator = TwoInOneAccelerator(optimize_dataflow=False)
    layer = network_layers("resnet50", "imagenet")[5]
    optimizer = EvolutionaryDataflowOptimizer(
        accelerator.model, OptimizerConfig(population_size=16, total_cycles=4))
    dataflow, perf = optimizer.optimize_layer(layer, precision=4)
    print(f"layer {layer.name}: {layer.macs / 1e6:.1f} MMACs")
    print("best dataflow:", dataflow.describe())
    print(f"cycles {perf.total_cycles:.3e}  energy {perf.total_energy:.3e}  "
          f"memory bound: {perf.is_memory_bound}")

    print("\n== Micro-architecture search under the shared area budget ==")
    search = MicroArchitectureSearch(
        mac_unit_factory=SpatialTemporalMAC,
        area_budget=COMPUTE_AREA_BUDGET,
        unit_counts=(512, 1024, 2048),
        buffer_scales=(0.5, 1.0),
        optimizer_config=OptimizerConfig(population_size=8, total_cycles=2))
    candidates = search.search(network_layers("resnet18", "cifar10")[:4],
                               precisions=(4, 8))
    print(format_table([{
        "num_units": c.num_units,
        "buffer_scale": c.buffer_scale,
        "compute_area": c.compute_area,
        "avg_score (cycles*energy)": c.average_score,
    } for c in candidates], float_format="{:.3e}"))


if __name__ == "__main__":
    main()
